"""The fault-model library.

Each model maps a classic memory fault (van de Goor [1][9]) onto:

* :meth:`~repro.faults.faultlist.FaultModel.classes` -- BFE equivalence
  classes over the symbolic two-cell machine, consumed by the March
  test generator;
* :meth:`~repro.faults.faultlist.FaultModel.instances` -- concrete
  behavioural fault cases for an n-cell simulated memory, consumed by
  the fault simulator (paper, Section 6).

Single-cell faults are lifted onto cell ``i`` of the two-cell machine
with a don't-care on the other cell and flagged *cell-symmetric*: the
per-cell operation stream of a March test is identical for every cell,
so one symbolic representative suffices.

Two-cell (coupling / address) faults produce one class per aggressor ->
victim direction, because the address order of March elements treats
the lower- and higher-address cell differently.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..memory.operations import Operation, read, wait, write
from ..memory.state import DASH, MemoryState
from .bfe import BasicFaultEffect, delta_bfe, lambda_bfe
from .faultlist import BFEClass, FaultModel
from .instances import (
    CouplingIdempotentInstance,
    CouplingInversionInstance,
    CouplingStateInstance,
    DataRetentionInstance,
    DeadCellInstance,
    FaultCase,
    IncorrectReadInstance,
    MultiCellAccessInstance,
    ReadDisturbInstance,
    SharedCellAccessInstance,
    StuckAtInstance,
    StuckOpenInstance,
    TransitionFaultInstance,
    WriteDisturbInstance,
    WrongCellAccessInstance,
    case,
)


def _pair_state(cells: Sequence[str], **values: object) -> MemoryState:
    """State over ``cells`` with the given per-cell values, '-' elsewhere."""
    return MemoryState(
        tuple(cells), tuple(values.get(c, DASH) for c in cells)
    )


def _directions(cells: Sequence[str]) -> Tuple[Tuple[str, str], ...]:
    """All ordered (aggressor, victim) pairs of the machine's cells."""
    return tuple(
        (a, v) for a in cells for v in cells if a != v
    )


def _pairs(size: int) -> Tuple[Tuple[int, int], ...]:
    return tuple((a, v) for a in range(size) for v in range(size) if a != v)


# ---------------------------------------------------------------------------
# Single-cell faults
# ---------------------------------------------------------------------------


class StuckAtFault(FaultModel):
    """SAF: the cell permanently holds 0 (SA0) or 1 (SA1).

    Each polarity is one equivalence class with two alternative BFEs:
    the lost transition (delta) or the wrong read value (lambda) -- a
    test covering either observes the stuck cell.
    """

    name = "SAF"

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        c = cells[0]
        out = []
        for stuck in (0, 1):
            good = 1 - stuck
            members = (
                delta_bfe(
                    _pair_state(cells, **{c: stuck}),
                    write(c, good),
                    _pair_state(cells, **{c: stuck}),
                    label=f"SA{stuck} lost w{good}",
                ),
                lambda_bfe(
                    _pair_state(cells, **{c: good}),
                    read(c),
                    stuck,
                    label=f"SA{stuck} reads {stuck}",
                ),
            )
            out.append(
                BFEClass(f"SA{stuck}", members, cell_symmetric=True)
            )
        return tuple(out)

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        return tuple(
            case(
                f"SA{value}@{cell}",
                lambda cell=cell, value=value: StuckAtInstance(cell, value),
            )
            for cell in range(size)
            for value in (0, 1)
        )


class TransitionFault(FaultModel):
    """TF: the cell fails its up (``<up,stay>``) or down transition."""

    name = "TF"

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        c = cells[0]
        out = []
        for start, label in ((0, "TF<up>"), (1, "TF<down>")):
            bfe = delta_bfe(
                _pair_state(cells, **{c: start}),
                write(c, 1 - start),
                _pair_state(cells, **{c: start}),
                label=label,
            )
            out.append(BFEClass(label, (bfe,), cell_symmetric=True))
        return tuple(out)

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        return tuple(
            case(
                f"TF{'up' if rising else 'down'}@{cell}",
                lambda cell=cell, rising=rising: TransitionFaultInstance(
                    cell, rising
                ),
            )
            for cell in range(size)
            for rising in (True, False)
        )


class ReadDisturbFault(FaultModel):
    """RDF: reading the cell flips it and returns the wrong value.

    The wrong returned value is itself the observation, so the class
    reduces to a lambda BFE per polarity.
    """

    name = "RDF"

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        c = cells[0]
        out = []
        for value in (0, 1):
            bfe = lambda_bfe(
                _pair_state(cells, **{c: value}),
                read(c),
                1 - value,
                label=f"RDF<r{value}>",
            )
            out.append(BFEClass(f"RDF<r{value}>", (bfe,), cell_symmetric=True))
        return tuple(out)

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        return tuple(
            case(
                f"RDF{value}@{cell}",
                lambda cell=cell, value=value: ReadDisturbInstance(
                    cell, value, deceptive=False
                ),
            )
            for cell in range(size)
            for value in (0, 1)
        )


class DeceptiveReadDisturbFault(FaultModel):
    """DRDF: the read returns the correct value but flips the cell.

    Modelled as a destructive-read delta BFE: observation requires a
    second read of the same cell.
    """

    name = "DRDF"

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        c = cells[0]
        out = []
        for value in (0, 1):
            bfe = delta_bfe(
                _pair_state(cells, **{c: value}),
                read(c),
                _pair_state(cells, **{c: 1 - value}),
                label=f"DRDF<r{value}>",
            )
            out.append(BFEClass(f"DRDF<r{value}>", (bfe,), cell_symmetric=True))
        return tuple(out)

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        return tuple(
            case(
                f"DRDF{value}@{cell}",
                lambda cell=cell, value=value: ReadDisturbInstance(
                    cell, value, deceptive=True
                ),
            )
            for cell in range(size)
            for value in (0, 1)
        )


class IncorrectReadFault(FaultModel):
    """IRF: the read returns the wrong value; the cell is unchanged."""

    name = "IRF"

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        c = cells[0]
        out = []
        for value in (0, 1):
            bfe = lambda_bfe(
                _pair_state(cells, **{c: value}),
                read(c),
                1 - value,
                label=f"IRF<r{value}>",
            )
            out.append(BFEClass(f"IRF<r{value}>", (bfe,), cell_symmetric=True))
        return tuple(out)

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        return tuple(
            case(
                f"IRF{value}@{cell}",
                lambda cell=cell, value=value: IncorrectReadInstance(cell, value),
            )
            for cell in range(size)
            for value in (0, 1)
        )


class WriteDisturbFault(FaultModel):
    """WDF: a non-transition write (w0 to a 0 cell / w1 to a 1 cell)
    flips the cell."""

    name = "WDF"

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        c = cells[0]
        out = []
        for value in (0, 1):
            bfe = delta_bfe(
                _pair_state(cells, **{c: value}),
                write(c, value),
                _pair_state(cells, **{c: 1 - value}),
                label=f"WDF<w{value}>",
            )
            out.append(BFEClass(f"WDF<w{value}>", (bfe,), cell_symmetric=True))
        return tuple(out)

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        return tuple(
            case(
                f"WDF{value}@{cell}",
                lambda cell=cell, value=value: WriteDisturbInstance(cell, value),
            )
            for cell in range(size)
            for value in (0, 1)
        )


class DataRetentionFault(FaultModel):
    """DRF: the cell loses its content during a retention period ``T``."""

    name = "DRF"

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        c = cells[0]
        out = []
        for value in (0, 1):
            bfe = delta_bfe(
                _pair_state(cells, **{c: value}),
                wait(),
                _pair_state(cells, **{c: 1 - value}),
                label=f"DRF<{value}->{1 - value}>",
            )
            out.append(
                BFEClass(f"DRF<{value}>", (bfe,), cell_symmetric=True)
            )
        return tuple(out)

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        return tuple(
            case(
                f"DRF{value}@{cell}",
                lambda cell=cell, value=value: DataRetentionInstance(cell, value),
            )
            for cell in range(size)
            for value in (0, 1)
        )


class StuckOpenFault(FaultModel):
    """SOF: the cell line is open; reads return the sense-amplifier
    latch.  Detection requires observing both a wrong 0 and a wrong 1,
    hence two singleton classes (worst-case latch content)."""

    name = "SOF"

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        c = cells[0]
        out = []
        for value in (0, 1):
            bfe = lambda_bfe(
                _pair_state(cells, **{c: value}),
                read(c),
                1 - value,
                label=f"SOF<r{value}>",
            )
            out.append(BFEClass(f"SOF<r{value}>", (bfe,), cell_symmetric=True))
        return tuple(out)

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        return tuple(
            case(
                f"SOF@{cell}",
                lambda cell=cell: StuckOpenInstance(cell, initial_latch=0),
                lambda cell=cell: StuckOpenInstance(cell, initial_latch=1),
            )
            for cell in range(size)
        )


# ---------------------------------------------------------------------------
# Two-cell coupling faults
# ---------------------------------------------------------------------------


def _transition_writes(rising: bool) -> Tuple[int, int]:
    """(initial aggressor value, written value) of the transition."""
    return (0, 1) if rising else (1, 0)


class CouplingIdempotentFault(FaultModel):
    """CFid ``<up/down, 0/1>``: an aggressor transition forces the victim.

    Each (transition, forced value, direction) is a singleton class:
    the only deviating state has the victim at the complement of the
    forced value (paper, Figure 3).
    """

    name = "CFID"

    def __init__(self, primitives: Sequence[str] = ("up", "down"),
                 values: Sequence[int] = (0, 1)) -> None:
        self.primitives = tuple(primitives)
        self.values = tuple(values)

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        out = []
        for prim in self.primitives:
            rising = prim == "up"
            start, written = _transition_writes(rising)
            for forced in self.values:
                for agg, vic in _directions(cells):
                    state = _pair_state(cells, **{agg: start, vic: 1 - forced})
                    faulty = _pair_state(cells, **{vic: forced})
                    name = f"CFid<{prim},{forced}> {agg}->{vic}"
                    bfe = delta_bfe(state, write(agg, written), faulty, label=name)
                    out.append(BFEClass(name, (bfe,)))
        return tuple(out)

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        out = []
        for prim in self.primitives:
            rising = prim == "up"
            for forced in self.values:
                for agg, vic in _pairs(size):
                    out.append(
                        case(
                            f"CFid<{prim},{forced}> {agg}->{vic}",
                            lambda agg=agg, vic=vic, rising=rising, forced=forced:
                            CouplingIdempotentInstance(agg, vic, rising, forced),
                        )
                    )
        return tuple(out)


class CouplingInversionFault(FaultModel):
    """CFin ``<up/down, inv>``: an aggressor transition inverts the victim.

    Each (transition, direction) is a class of **two** alternative BFEs
    -- victim initially 0 or initially 1 -- of which covering either
    detects the fault (the paper's Section 5 example).
    """

    name = "CFIN"

    def __init__(self, primitives: Sequence[str] = ("up", "down")) -> None:
        self.primitives = tuple(primitives)

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        out = []
        for prim in self.primitives:
            rising = prim == "up"
            start, written = _transition_writes(rising)
            for agg, vic in _directions(cells):
                members = []
                for vic_value in (0, 1):
                    state = _pair_state(
                        cells, **{agg: start, vic: vic_value}
                    )
                    faulty = _pair_state(cells, **{vic: 1 - vic_value})
                    members.append(
                        delta_bfe(
                            state,
                            write(agg, written),
                            faulty,
                            label=f"CFin<{prim},inv> {agg}->{vic} victim@{vic_value}",
                        )
                    )
                name = f"CFin<{prim},inv> {agg}->{vic}"
                out.append(BFEClass(name, tuple(members)))
        return tuple(out)

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        out = []
        for prim in self.primitives:
            rising = prim == "up"
            for agg, vic in _pairs(size):
                out.append(
                    case(
                        f"CFin<{prim}> {agg}->{vic}",
                        lambda agg=agg, vic=vic, rising=rising:
                        CouplingInversionInstance(agg, vic, rising),
                    )
                )
        return tuple(out)


class CouplingStateFault(FaultModel):
    """CFst ``<0/1, 0/1>``: while the aggressor holds a value the victim
    is forced.  Two alternative BFEs per class: the victim write that
    fails, or the aggressor write that drags the victim along."""

    name = "CFST"

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        out = []
        for agg_value in (0, 1):
            for forced in (0, 1):
                for agg, vic in _directions(cells):
                    lost_write = delta_bfe(
                        _pair_state(cells, **{agg: agg_value, vic: forced}),
                        write(vic, 1 - forced),
                        _pair_state(cells, **{vic: forced}),
                        label=(
                            f"CFst<{agg_value},{forced}> {agg}->{vic}"
                            " lost victim write"
                        ),
                    )
                    dragged = delta_bfe(
                        _pair_state(
                            cells, **{agg: 1 - agg_value, vic: 1 - forced}
                        ),
                        write(agg, agg_value),
                        _pair_state(cells, **{vic: forced}),
                        label=(
                            f"CFst<{agg_value},{forced}> {agg}->{vic}"
                            " aggressor entry"
                        ),
                    )
                    name = f"CFst<{agg_value},{forced}> {agg}->{vic}"
                    out.append(BFEClass(name, (lost_write, dragged)))
        return tuple(out)

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        out = []
        for agg_value in (0, 1):
            for forced in (0, 1):
                for agg, vic in _pairs(size):
                    out.append(
                        case(
                            f"CFst<{agg_value},{forced}> {agg}->{vic}",
                            lambda agg=agg, vic=vic, s=agg_value, f=forced:
                            CouplingStateInstance(agg, vic, s, f),
                        )
                    )
        return tuple(out)


# ---------------------------------------------------------------------------
# Address decoder faults
# ---------------------------------------------------------------------------


class AddressDecoderFault(FaultModel):
    """ADF: the four classic address-decoder fault types.

    * type A -- a cell is never accessed (dead cell);
    * type B -- accesses to one address reach another cell instead;
    * type C -- accesses to one address also reach another cell;
    * type D -- two addresses map to the same cell.

    Type A reduces to the transition-fault classes (worst-case float
    value).  Types B/C/D are modelled behaviourally: each direction is a
    single physical fault, hence one equivalence class whose members are
    every delta/lambda deviation of the faulty machine -- detecting any
    one deviation detects the fault.
    """

    name = "ADF"

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        out: List[BFEClass] = []
        out.extend(self._type_a_classes(cells))
        for agg, vic in _directions(cells):
            out.append(self._type_b_class(cells, agg, vic))
            out.append(self._type_c_class(cells, agg, vic))
            out.append(self._type_d_class(cells, agg, vic))
        return tuple(out)

    def _type_a_classes(self, cells: Sequence[str]) -> Tuple[BFEClass, ...]:
        c = cells[0]
        out = []
        for start in (0, 1):
            bfe = delta_bfe(
                _pair_state(cells, **{c: start}),
                write(c, 1 - start),
                _pair_state(cells, **{c: start}),
                label=f"ADF-A lost w{1 - start}",
            )
            out.append(
                BFEClass(f"ADF-A<{start}>", (bfe,), cell_symmetric=True)
            )
        return tuple(out)

    def _enumerate_deviations(
        self,
        cells: Sequence[str],
        name: str,
        delta_map: Callable[[MemoryState, Operation], MemoryState],
        read_map: Callable[[MemoryState, str], object],
    ) -> BFEClass:
        """Build one class holding every deviation of a faulty machine."""
        from itertools import product

        members: List[BasicFaultEffect] = []
        concrete_states = [
            MemoryState(tuple(cells), combo)
            for combo in product((0, 1), repeat=len(cells))
        ]
        for state in concrete_states:
            for cell in cells:
                for value in (0, 1):
                    op = write(cell, value)
                    good = state.apply(op)
                    faulty = delta_map(state, op)
                    if faulty != good:
                        members.append(
                            delta_bfe(state, op, faulty, label=f"{name} {state}/{op}")
                        )
            for cell in cells:
                good_out = state[cell]
                faulty_out = read_map(state, cell)
                if faulty_out != good_out:
                    members.append(
                        lambda_bfe(
                            state, read(cell), faulty_out,
                            label=f"{name} {state}/r{cell}",
                        )
                    )
        return BFEClass(name, tuple(members))

    def _type_b_class(
        self, cells: Sequence[str], a: str, b: str
    ) -> BFEClass:
        def delta_map(state: MemoryState, op: Operation) -> MemoryState:
            target = b if op.cell == a else op.cell
            return state.set(target, op.value)

        def read_map(state: MemoryState, cell: str) -> object:
            return state[b if cell == a else cell]

        return self._enumerate_deviations(
            cells, f"ADF-B {a}=>{b}", delta_map, read_map
        )

    def _type_c_class(
        self, cells: Sequence[str], a: str, b: str
    ) -> BFEClass:
        def delta_map(state: MemoryState, op: Operation) -> MemoryState:
            nxt = state.set(op.cell, op.value)
            if op.cell == a:
                nxt = nxt.set(b, op.value)
            return nxt

        def read_map(state: MemoryState, cell: str) -> object:
            if cell != a:
                return state[cell]
            va, vb = state[a], state[b]
            if va in (0, 1) and vb in (0, 1):
                return int(va) & int(vb)
            return DASH

        return self._enumerate_deviations(
            cells, f"ADF-C {a}+{b}", delta_map, read_map
        )

    def _type_d_class(
        self, cells: Sequence[str], a: str, b: str
    ) -> BFEClass:
        def delta_map(state: MemoryState, op: Operation) -> MemoryState:
            target = a if op.cell == b else op.cell
            return state.set(target, op.value)

        def read_map(state: MemoryState, cell: str) -> object:
            return state[a if cell == b else cell]

        return self._enumerate_deviations(
            cells, f"ADF-D {a}<={b}", delta_map, read_map
        )

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        out: List[FaultCase] = []
        for cell in range(size):
            out.append(
                case(
                    f"ADF-A@{cell}",
                    lambda cell=cell: DeadCellInstance(cell, 0),
                    lambda cell=cell: DeadCellInstance(cell, 1),
                )
            )
        for a, b in _pairs(size):
            out.append(
                case(
                    f"ADF-B {a}=>{b}",
                    lambda a=a, b=b: WrongCellAccessInstance(a, b),
                )
            )
            out.append(
                case(
                    f"ADF-C {a}+{b}",
                    *(
                        lambda a=a, b=b, m=m: MultiCellAccessInstance(a, b, m)
                        for m in MultiCellAccessInstance.READ_MODELS
                    ),
                )
            )
            out.append(
                case(
                    f"ADF-D {a}<={b}",
                    lambda a=a, b=b: SharedCellAccessInstance(a, b),
                )
            )
        return tuple(out)


# ---------------------------------------------------------------------------
# User-defined faults
# ---------------------------------------------------------------------------


class UserDefinedFault(FaultModel):
    """A fault model supplied directly as BFE classes (paper, Section 1:
    the representation can "possibly add new user-defined faults").

    ``instance_cases`` is optional: models without behavioural instances
    are skipped by simulator-based validation and covered symbolically.
    """

    def __init__(
        self,
        name: str,
        classes: Sequence[BFEClass],
        instance_cases: Callable[[int], Tuple[FaultCase, ...]] = None,
    ) -> None:
        self.name = name
        self._classes = tuple(classes)
        self._instance_cases = instance_cases

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        return self._classes

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        if self._instance_cases is None:
            return ()
        return self._instance_cases(size)


#: Registry used by :meth:`FaultList.from_names`.
MODEL_REGISTRY = {
    "SAF": StuckAtFault,
    "TF": TransitionFault,
    "ADF": AddressDecoderFault,
    "CFIN": CouplingInversionFault,
    "CFID": CouplingIdempotentFault,
    "CFST": CouplingStateFault,
    "RDF": ReadDisturbFault,
    "DRDF": DeceptiveReadDisturbFault,
    "IRF": IncorrectReadFault,
    "WDF": WriteDisturbFault,
    "DRF": DataRetentionFault,
    "SOF": StuckOpenFault,
}


class ReadCouplingFault(FaultModel):
    """CFrd ``<r,0/1>``: reading the aggressor forces the victim.

    A disturb coupling sensitized by a *read* of the aggressor cell --
    the read itself is non-destructive on the aggressor, but bit-line
    activity forces the victim to a value.  Each (forced value,
    direction) is a singleton class: the only deviating state has the
    victim at the complement of the forced value.
    """

    name = "CFRD"

    def __init__(self, values: Sequence[int] = (0, 1)) -> None:
        self.values = tuple(values)

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        out = []
        for forced in self.values:
            for agg, vic in _directions(cells):
                state = _pair_state(cells, **{vic: 1 - forced})
                faulty = _pair_state(cells, **{vic: forced})
                name = f"CFrd<r,{forced}> {agg}->{vic}"
                bfe = delta_bfe(state, read(agg), faulty, label=name)
                out.append(BFEClass(name, (bfe,)))
        return tuple(out)

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        from .instances import ReadCouplingInstance

        out = []
        for forced in self.values:
            for agg, vic in _pairs(size):
                out.append(
                    case(
                        f"CFrd<r,{forced}> {agg}->{vic}",
                        lambda agg=agg, vic=vic, forced=forced:
                        ReadCouplingInstance(agg, vic, forced),
                    )
                )
        return tuple(out)


MODEL_REGISTRY["CFRD"] = ReadCouplingFault
