"""Linked faults: coupled faults sharing a victim that mask each other.

Two coupling faults are *linked* when they target the same victim cell:
the second fault's effect can overwrite or cancel the first's before
any read observes it.  Linked faults are the classic reason simple
March tests (March C-) are not universal and longer tests (March A/B,
March LR) exist.

Generation for linked faults needs multi-deviation reasoning beyond the
paper's single-BFE model (its reference [5] treats them); here we
provide the *behavioural* side -- injectable instances and case
enumerations -- so the simulator and the analysis tools can quantify
the masking phenomenon (see ``tests/faults/test_linked.py``).
"""

from __future__ import annotations

from typing import List, Tuple

from ..memory.array import MemoryArray, NullFaultInstance
from .instances import FaultCase, case


class LinkedInversionPair(NullFaultInstance):
    """Two inversion coupling faults `<up, inv>` sharing one victim.

    A rising transition of either aggressor inverts the victim; when a
    test lets both fire between consecutive victim observations, the
    two inversions cancel and the pair hides.
    """

    def __init__(self, aggressor1: int, aggressor2: int, victim: int) -> None:
        if len({aggressor1, aggressor2, victim}) != 3:
            raise ValueError("aggressors and victim must be distinct")
        self.aggressors = (aggressor1, aggressor2)
        self.victim = victim

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        old = memory.raw[address]
        memory.raw[address] = value
        if address in self.aggressors and old == 0 and value == 1:
            victim_value = memory.raw[self.victim]
            if victim_value in (0, 1):
                memory.raw[self.victim] = 1 - int(victim_value)


class LinkedIdempotentPair(NullFaultInstance):
    """CFid `<up, x>` from one aggressor linked with `<up, 1-x>` from
    another onto the same victim: the later excitation overwrites the
    earlier fault effect."""

    def __init__(
        self,
        aggressor1: int,
        aggressor2: int,
        victim: int,
        first_forces: int = 1,
    ) -> None:
        if len({aggressor1, aggressor2, victim}) != 3:
            raise ValueError("aggressors and victim must be distinct")
        self.aggressor1 = aggressor1
        self.aggressor2 = aggressor2
        self.victim = victim
        self.first_forces = first_forces

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        old = memory.raw[address]
        memory.raw[address] = value
        if old == 0 and value == 1:
            if address == self.aggressor1:
                memory.raw[self.victim] = self.first_forces
            elif address == self.aggressor2:
                memory.raw[self.victim] = 1 - self.first_forces


def linked_inversion_cases(size: int) -> Tuple[FaultCase, ...]:
    """All `<up,inv>`-pair placements with distinct cells.

    Both aggressor orderings relative to the victim are enumerated --
    masking depends on whether the March element reaches the victim
    between the two aggressors.
    """
    cases: List[FaultCase] = []
    for a1 in range(size):
        for a2 in range(size):
            for victim in range(size):
                if len({a1, a2, victim}) != 3 or a1 > a2:
                    continue
                cases.append(
                    case(
                        f"CFin&CFin ({a1},{a2})->{victim}",
                        lambda a1=a1, a2=a2, v=victim:
                        LinkedInversionPair(a1, a2, v),
                    )
                )
    return tuple(cases)


def linked_idempotent_cases(size: int) -> Tuple[FaultCase, ...]:
    """All opposing CFid-pair placements with distinct cells."""
    cases: List[FaultCase] = []
    for a1 in range(size):
        for a2 in range(size):
            for victim in range(size):
                if len({a1, a2, victim}) != 3:
                    continue
                cases.append(
                    case(
                        f"CFid&CFid {a1},{a2}->{victim}",
                        lambda a1=a1, a2=a2, v=victim:
                        LinkedIdempotentPair(a1, a2, v),
                    )
                )
    return tuple(cases)
