"""Fault lists and BFE equivalence classes.

Section 5 of the paper observes that a fault may be covered by any one
of several BFEs (e.g. the inversion coupling fault ``<up, inv>`` yields
two test patterns of which only one is necessary).  We therefore group
BFEs into :class:`BFEClass` equivalence classes: **every class must be
covered, and covering any one member covers the class.**

A :class:`FaultList` aggregates fault models and exposes the merged,
de-duplicated class collection the generator works on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .bfe import BasicFaultEffect


@dataclass(frozen=True)
class BFEClass:
    """An equivalence class of BFEs (Section 5, classes ``Ci``).

    Attributes
    ----------
    name:
        Diagnostic label, e.g. ``"CFin<up,inv> i->j"``.
    members:
        Alternative BFEs; covering any single member covers the class.
    cell_symmetric:
        True for single-cell faults lifted onto one symbolic cell: the
        per-cell operation stream of a March test is identical for every
        cell, so one representative cell suffices.
    """

    name: str
    members: Tuple[BasicFaultEffect, ...]
    cell_symmetric: bool = False

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError(f"BFE class {self.name!r} has no members")

    @property
    def cardinality(self) -> int:
        """|Ci| -- the number of alternatives (paper, Section 5)."""
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)


class FaultModel:
    """Base class for fault models.

    Concrete models implement :meth:`classes` returning the BFE
    equivalence classes over the symbolic cells of the k-cell machine,
    and :meth:`instances` (see :mod:`repro.simulator.faultsim`) returning
    concrete injectable instances for an n-cell memory.
    """

    #: Short name used in fault-list notation, e.g. "SAF".
    name: str = "fault"

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        raise NotImplementedError

    def instances(self, size: int) -> Tuple[object, ...]:
        """Concrete fault instances for an n-cell simulated memory."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


@dataclass
class FaultList:
    """An unconstrained list of target fault models (paper, Section 4).

    >>> from repro.faults.library import StuckAtFault, TransitionFault
    >>> fl = FaultList([StuckAtFault(), TransitionFault()])
    >>> sorted(m.name for m in fl.models)
    ['SAF', 'TF']
    """

    models: List[FaultModel] = field(default_factory=list)

    @classmethod
    def from_names(cls, *names: str) -> "FaultList":
        """Build a list from model names, e.g. ``FaultList.from_names("SAF", "TF")``."""
        from . import library

        registry = library.MODEL_REGISTRY
        models = []
        for name in names:
            key = name.strip().upper()
            if key not in registry:
                raise KeyError(
                    f"unknown fault model {name!r}; known: {sorted(registry)}"
                )
            models.append(registry[key]())
        return cls(models)

    def add(self, model: FaultModel) -> "FaultList":
        self.models.append(model)
        return self

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        """Merged, de-duplicated BFE classes of all models.

        Two classes with identical member sets are merged (e.g. the
        up-transition fault and the delta-BFE of the stuck-at-0 fault
        share a deviation).  A class whose members are a *superset* of
        another retained class is kept as-is -- subsumption between
        overlapping classes is resolved later, during test-pattern
        selection (the generator prefers selections that share nodes).
        """
        merged: List[BFEClass] = []
        seen: Dict[Tuple, str] = {}
        for model in self.models:
            for cls_ in model.classes(cells):
                key = _class_key(cls_)
                if key in seen:
                    continue
                seen[key] = cls_.name
                merged.append(cls_)
        return tuple(merged)

    def instances(self, size: int) -> Tuple[object, ...]:
        """All concrete fault instances of all models for an n-cell memory."""
        out: List[object] = []
        for model in self.models:
            out.extend(model.instances(size))
        return tuple(out)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self.models)

    def __iter__(self):
        return iter(self.models)

    def __len__(self) -> int:
        return len(self.models)


def _bfe_key(bfe: BasicFaultEffect) -> Tuple:
    return (
        bfe.kind.value,
        str(bfe.state),
        str(bfe.op),
        str(bfe.faulty_next) if bfe.faulty_next is not None else None,
        bfe.faulty_output,
    )


def _class_key(cls_: BFEClass) -> Tuple:
    return (
        cls_.cell_symmetric,
        tuple(sorted(_bfe_key(b) for b in cls_.members)),
    )
