"""Basic Fault Effects (BFEs).

A BFE (paper, Section 3, after [5][6]) is a faulty machine ``Mi`` whose
transition function differs from the good machine ``M0`` in **exactly
one** transition, or whose output function differs in exactly one
output value.  Figure 3 of the paper shows the two BFEs composing the
idempotent coupling fault ``<up, 0>``.

A BFE directly induces the test patterns able to cover it
(:mod:`repro.patterns.test_pattern`):

* a *delta*-BFE at ``(state, op)`` with faulty target ``t`` is excited
  by driving the memory to ``state`` and applying ``op``; it is observed
  by read-and-verifying any cell on which the good next state and ``t``
  disagree;
* a *lambda*-BFE at ``(state, read op)`` is excited and observed by the
  read itself: drive to ``state`` and read-and-verify the good value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..memory.mealy import MealyMachine
from ..memory.operations import Operation
from ..memory.state import MemoryState


class BFEKind(enum.Enum):
    """Whether the deviation affects ``delta`` or ``lambda``."""

    DELTA = "delta"
    LAMBDA = "lambda"


@dataclass(frozen=True)
class BasicFaultEffect:
    """A single-deviation faulty behaviour.

    Attributes
    ----------
    kind:
        ``BFEKind.DELTA`` or ``BFEKind.LAMBDA``.
    state:
        The machine state at which the deviation applies.  May contain
        don't-cares, in which case the deviation applies at every
        completion of the state (a compact encoding of a *family* of
        single-deviation machines that always occur together; e.g. a
        single-cell fault lifted to the two-cell machine).
    op:
        The input operation triggering the deviation.
    faulty_next:
        For delta-BFEs: the faulty next state (concrete cells only where
        they deviate; don't-care cells follow the good machine).
    faulty_output:
        For lambda-BFEs: the faulty read output.
    label:
        Human-readable provenance, e.g. ``"CFid<up,0> i->j"``.
    """

    kind: BFEKind
    state: MemoryState
    op: Operation
    faulty_next: Optional[MemoryState] = None
    faulty_output: Optional[object] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind is BFEKind.DELTA:
            if self.faulty_next is None:
                raise ValueError("delta-BFE requires faulty_next")
            if self.op.is_read:
                # Destructive reads are modelled as delta deviations on a
                # read input; allowed.
                pass
        else:
            if self.faulty_output is None:
                raise ValueError("lambda-BFE requires faulty_output")
            if not self.op.is_read:
                raise ValueError("lambda-BFE must deviate on a read")

    # -- properties --------------------------------------------------------

    @property
    def cells(self) -> Tuple[str, ...]:
        return self.state.cells

    def good_next(self, state: MemoryState) -> MemoryState:
        """Good-machine next state from a concrete completion."""
        return state.apply(self.op)

    def deviating_cells(self, state: MemoryState) -> Tuple[str, ...]:
        """Cells whose value differs between good and faulty next state.

        ``state`` must be a concrete completion of ``self.state``.
        """
        if self.kind is not BFEKind.DELTA:
            return ()
        good = self.good_next(state)
        faulty = self.concrete_faulty_next(state)
        return tuple(
            cell for cell in self.cells if good[cell] != faulty[cell]
        )

    def concrete_faulty_next(self, state: MemoryState) -> MemoryState:
        """Faulty next state from a concrete completion of ``self.state``.

        Don't-care cells of ``faulty_next`` follow the good machine.
        """
        if self.kind is not BFEKind.DELTA:
            raise ValueError("only delta-BFEs have a faulty next state")
        good = self.good_next(state)
        assert self.faulty_next is not None
        return _overlay(good, self.faulty_next)

    # -- machine construction ------------------------------------------------

    def apply_to(self, machine: MealyMachine, name: str = "") -> MealyMachine:
        """Build the faulty Mealy machine ``Mi`` by deviating ``machine``.

        When ``self.state`` has don't-cares the deviation is installed at
        every concrete completion (and at matching non-initialized
        states where defined).
        """
        faulty = machine.copy(name or (self.label or "Mi"))
        for concrete in self.state.completions():
            key = (concrete, self.op if not self.op.is_verifying_read
                   else self.op.plain_read())
            if key not in faulty.delta:
                continue
            if self.kind is BFEKind.DELTA:
                faulty.delta[key] = self.concrete_faulty_next(concrete)
            else:
                faulty.lam[key] = self.faulty_output
        return faulty

    def is_single_deviation(self) -> bool:
        """True when ``state`` is concrete (a literal paper BFE)."""
        return self.state.is_concrete

    def __str__(self) -> str:
        core = f"{self.state} --{self.op}--> "
        if self.kind is BFEKind.DELTA:
            core += f"{self.faulty_next} (delta)"
        else:
            core += f"out={self.faulty_output} (lambda)"
        if self.label:
            core = f"[{self.label}] " + core
        return core


def _overlay(good: MemoryState, faulty: MemoryState) -> MemoryState:
    """Overlay the concrete cells of ``faulty`` onto ``good``."""
    values = tuple(
        fv if fv != "-" else gv
        for (_, gv), (_, fv) in zip(good, faulty)
    )
    return MemoryState(good.cells, values)


def delta_bfe(
    state: MemoryState,
    op: Operation,
    faulty_next: MemoryState,
    label: str = "",
) -> BasicFaultEffect:
    """Convenience constructor for a delta-BFE."""
    return BasicFaultEffect(
        BFEKind.DELTA, state, op, faulty_next=faulty_next, label=label
    )


def lambda_bfe(
    state: MemoryState,
    op: Operation,
    faulty_output: object,
    label: str = "",
) -> BasicFaultEffect:
    """Convenience constructor for a lambda-BFE."""
    return BasicFaultEffect(
        BFEKind.LAMBDA, state, op, faulty_output=faulty_output, label=label
    )
