"""Concrete injectable fault instances for n-cell simulated memories.

These classes implement the behavioural hooks of
:class:`repro.memory.array.FaultInstance` and are what the fault
simulator (paper, Section 6) injects into a :class:`MemoryArray` to
validate generated March tests.

Faults whose behaviour depends on an unknowable physical condition
(e.g. the value a dead cell floats to) are represented by a
:class:`FaultCase` with several *variants*; a test detects the case
only if it detects **every** variant (worst-case semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from ..memory.array import MemoryArray, NullFaultInstance
from ..memory.state import DASH


@dataclass(frozen=True)
class FaultCase:
    """One physical fault to detect, with worst-case behavioural variants."""

    name: str
    variants: Tuple[Callable[[], object], ...]

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError(f"fault case {self.name!r} has no variants")


def case(name: str, *factories: Callable[[], object]) -> FaultCase:
    return FaultCase(name, tuple(factories))


# ---------------------------------------------------------------------------
# Single-cell faults
# ---------------------------------------------------------------------------


class StuckAtInstance(NullFaultInstance):
    """Cell ``cell`` permanently holds ``value`` (SA0/SA1)."""

    def __init__(self, cell: int, value: int) -> None:
        self.cell = cell
        self.value = value

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        if address == self.cell:
            memory.raw[address] = self.value
        else:
            memory.raw[address] = value

    def on_read(self, memory: MemoryArray, address: int) -> object:
        if address == self.cell:
            return self.value
        return memory.raw[address]

    def settle(self, memory: MemoryArray) -> None:
        """Persistent defect: re-assert the stuck value (used by
        composite multi-defect injection)."""
        memory.raw[self.cell] = self.value


class TransitionFaultInstance(NullFaultInstance):
    """Cell cannot make the ``0->1`` (rising) or ``1->0`` transition."""

    def __init__(self, cell: int, rising: bool) -> None:
        self.cell = cell
        self.rising = rising

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        if address == self.cell:
            old = memory.raw[address]
            fails = (old == 0 and value == 1) if self.rising else (
                old == 1 and value == 0
            )
            if fails:
                return  # the transition silently fails
        memory.raw[address] = value


class ReadDisturbInstance(NullFaultInstance):
    """Reading the cell while it holds ``value`` flips it.

    ``deceptive`` selects the DRDF flavour: the read *returns* the
    correct old value but still flips the cell.  Plain RDF returns the
    flipped (wrong) value.
    """

    def __init__(self, cell: int, value: int, deceptive: bool = False) -> None:
        self.cell = cell
        self.value = value
        self.deceptive = deceptive

    def on_read(self, memory: MemoryArray, address: int) -> object:
        old = memory.raw[address]
        if address == self.cell and old == self.value:
            memory.raw[address] = 1 - self.value
            return self.value if self.deceptive else 1 - self.value
        return old


class IncorrectReadInstance(NullFaultInstance):
    """Reading the cell while it holds ``value`` returns the complement
    without changing the stored value (IRF)."""

    def __init__(self, cell: int, value: int) -> None:
        self.cell = cell
        self.value = value

    def on_read(self, memory: MemoryArray, address: int) -> object:
        old = memory.raw[address]
        if address == self.cell and old == self.value:
            return 1 - self.value
        return old


class WriteDisturbInstance(NullFaultInstance):
    """A non-transition write of ``value`` flips the cell (WDF)."""

    def __init__(self, cell: int, value: int) -> None:
        self.cell = cell
        self.value = value

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        old = memory.raw[address]
        if address == self.cell and old == self.value and value == self.value:
            memory.raw[address] = 1 - self.value
            return
        memory.raw[address] = value


class DataRetentionInstance(NullFaultInstance):
    """After a retention period the cell decays from ``from_value``."""

    def __init__(self, cell: int, from_value: int) -> None:
        self.cell = cell
        self.from_value = from_value

    def on_wait(self, memory: MemoryArray) -> None:
        if memory.raw[self.cell] == self.from_value:
            memory.raw[self.cell] = 1 - self.from_value


class StuckOpenInstance(NullFaultInstance):
    """The cell line is open: reads return the sense-amplifier latch,
    i.e. the value returned by the *previous* read of any cell.

    ``initial_latch`` is the unknowable power-up latch content; fault
    cases enumerate both values adversarially.  Writes to the open cell
    are lost.
    """

    def __init__(self, cell: int, initial_latch: int) -> None:
        self.cell = cell
        self.latch: object = initial_latch

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        if address == self.cell:
            return
        memory.raw[address] = value

    def on_read(self, memory: MemoryArray, address: int) -> object:
        if address == self.cell:
            return self.latch
        value = memory.raw[address]
        if value in (0, 1):
            self.latch = value
        return value


class DeadCellInstance(NullFaultInstance):
    """Address-decoder fault type A: the cell is never accessed.

    Reads float to ``float_value`` (adversarially enumerated); writes
    are lost.
    """

    def __init__(self, cell: int, float_value: int) -> None:
        self.cell = cell
        self.float_value = float_value

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        if address == self.cell:
            return
        memory.raw[address] = value

    def on_read(self, memory: MemoryArray, address: int) -> object:
        if address == self.cell:
            return self.float_value
        return memory.raw[address]


# ---------------------------------------------------------------------------
# Two-cell faults
# ---------------------------------------------------------------------------


class CouplingIdempotentInstance(NullFaultInstance):
    """CFid ``<up/down, force_value>``: a rising (or falling) transition
    of the aggressor forces the victim to ``force_value``."""

    def __init__(
        self, aggressor: int, victim: int, rising: bool, force_value: int
    ) -> None:
        if aggressor == victim:
            raise ValueError("aggressor and victim must differ")
        self.aggressor = aggressor
        self.victim = victim
        self.rising = rising
        self.force_value = force_value

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        old = memory.raw[address]
        memory.raw[address] = value
        if address != self.aggressor:
            return
        fired = (old == 0 and value == 1) if self.rising else (
            old == 1 and value == 0
        )
        if fired:
            memory.raw[self.victim] = self.force_value


class CouplingInversionInstance(NullFaultInstance):
    """CFin ``<up/down, inv>``: an aggressor transition inverts the victim."""

    def __init__(self, aggressor: int, victim: int, rising: bool) -> None:
        if aggressor == victim:
            raise ValueError("aggressor and victim must differ")
        self.aggressor = aggressor
        self.victim = victim
        self.rising = rising

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        old = memory.raw[address]
        memory.raw[address] = value
        if address != self.aggressor:
            return
        fired = (old == 0 and value == 1) if self.rising else (
            old == 1 and value == 0
        )
        if fired:
            victim_value = memory.raw[self.victim]
            if victim_value in (0, 1):
                memory.raw[self.victim] = 1 - int(victim_value)


class CouplingStateInstance(NullFaultInstance):
    """CFst ``<agg_state, forced_value>``: while the aggressor holds
    ``agg_state`` the victim is forced to ``forced_value``."""

    def __init__(
        self, aggressor: int, victim: int, agg_state: int, forced_value: int
    ) -> None:
        if aggressor == victim:
            raise ValueError("aggressor and victim must differ")
        self.aggressor = aggressor
        self.victim = victim
        self.agg_state = agg_state
        self.forced_value = forced_value

    def _enforce(self, memory: MemoryArray) -> None:
        if memory.raw[self.aggressor] == self.agg_state:
            memory.raw[self.victim] = self.forced_value

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        memory.raw[address] = value
        self._enforce(memory)

    def on_read(self, memory: MemoryArray, address: int) -> object:
        self._enforce(memory)
        return memory.raw[address]

    def settle(self, memory: MemoryArray) -> None:
        """Persistent condition: re-enforce while the aggressor holds
        its state (used by composite multi-defect injection)."""
        self._enforce(memory)


class WrongCellAccessInstance(NullFaultInstance):
    """Address-decoder fault type B: accesses to ``a`` reach ``b`` instead."""

    def __init__(self, a: int, b: int) -> None:
        if a == b:
            raise ValueError("the two addresses must differ")
        self.a = a
        self.b = b

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        target = self.b if address == self.a else address
        memory.raw[target] = value

    def on_read(self, memory: MemoryArray, address: int) -> object:
        source = self.b if address == self.a else address
        return memory.raw[source]


class MultiCellAccessInstance(NullFaultInstance):
    """Address-decoder fault type C: accesses to ``a`` also reach ``b``.

    Writes go to both cells.  The value returned by a conflicting read
    of ``a`` is physically indeterminate, so the read model is a
    variant: wired-AND, wired-OR, own-cell-wins or other-cell-wins.  A
    test only counts the fault as detected when every read model is
    caught (worst-case semantics).
    """

    READ_MODELS = ("and", "or", "own", "other")

    def __init__(self, a: int, b: int, read_model: str = "and") -> None:
        if a == b:
            raise ValueError("the two addresses must differ")
        if read_model not in self.READ_MODELS:
            raise ValueError(f"unknown read model {read_model!r}")
        self.a = a
        self.b = b
        self.read_model = read_model

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        memory.raw[address] = value
        if address == self.a:
            memory.raw[self.b] = value

    def on_read(self, memory: MemoryArray, address: int) -> object:
        if address != self.a:
            return memory.raw[address]
        va, vb = memory.raw[self.a], memory.raw[self.b]
        if self.read_model == "own":
            return va
        if self.read_model == "other":
            return vb
        if va == DASH or vb == DASH:
            return DASH
        if self.read_model == "and":
            return int(va) & int(vb)
        return int(va) | int(vb)


class SharedCellAccessInstance(NullFaultInstance):
    """Address-decoder fault type D: addresses ``a`` and ``b`` both map
    to cell ``a`` (cell ``b`` is shadowed)."""

    def __init__(self, a: int, b: int) -> None:
        if a == b:
            raise ValueError("the two addresses must differ")
        self.a = a
        self.b = b

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        target = self.a if address == self.b else address
        memory.raw[target] = value

    def on_read(self, memory: MemoryArray, address: int) -> object:
        source = self.a if address == self.b else address
        return memory.raw[source]


class ReadCouplingInstance(NullFaultInstance):
    """CFrd: reading the aggressor forces the victim to ``forced``."""

    def __init__(self, aggressor: int, victim: int, forced: int) -> None:
        if aggressor == victim:
            raise ValueError("aggressor and victim must differ")
        self.aggressor = aggressor
        self.victim = victim
        self.forced = forced

    def on_read(self, memory: MemoryArray, address: int) -> object:
        value = memory.raw[address]
        if address == self.aggressor:
            memory.raw[self.victim] = self.forced
        return value
