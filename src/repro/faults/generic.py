"""Generic behavioural interpretation of BFE-defined faults.

The fault-model library pairs each model with a hand-written
behavioural instance.  For *user-defined* faults the paper only
requires the FSM description; this module closes the loop by
interpreting a set of BFEs directly on an n-cell memory, so any fault
expressible as machine deviations is also simulatable (and therefore
verifiable) without extra code:

* :class:`PairBFEInstance` -- executes the deviations of one faulty
  machine on a concrete (a, b) cell pair;
* :class:`GenericPairFault` -- a :class:`FaultModel` whose instances
  are derived automatically from its BFE classes.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from ..memory.array import MemoryArray, NullFaultInstance
from ..memory.state import MemoryState
from .bfe import BasicFaultEffect, BFEKind
from .faultlist import BFEClass, FaultModel
from .instances import FaultCase


class PairBFEInstance(NullFaultInstance):
    """Interpret two-cell BFEs on cells ``(a, b)`` of an n-cell memory.

    The symbolic cell ``i`` maps to address ``a`` and ``j`` to ``b``.
    All given BFEs belong to one faulty machine, so the first matching
    deviation wins (their trigger keys are disjoint in well-formed
    machines).
    """

    def __init__(
        self, bfes: Iterable[BasicFaultEffect], a: int, b: int
    ) -> None:
        if a == b:
            raise ValueError("the mapped cells must differ")
        self.bfes = tuple(bfes)
        self.a = a
        self.b = b
        for bfe in self.bfes:
            if tuple(bfe.cells) != ("i", "j"):
                raise ValueError(
                    "PairBFEInstance interprets two-cell (i, j) BFEs only"
                )

    # -- mapping helpers ---------------------------------------------------

    def _address_of(self, cell: str) -> int:
        return self.a if cell == "i" else self.b

    def _cell_of(self, address: int) -> str:
        return "i" if address == self.a else "j"

    def _pair_state(self, memory: MemoryArray) -> MemoryState:
        return MemoryState(
            ("i", "j"), (memory.raw[self.a], memory.raw[self.b])
        )

    def _apply_faulty_next(
        self, memory: MemoryArray, bfe: BasicFaultEffect, state: MemoryState
    ) -> None:
        faulty = bfe.concrete_faulty_next(state)
        memory.raw[self.a] = faulty["i"]
        memory.raw[self.b] = faulty["j"]

    def _matching(self, state: MemoryState, op_kind, op_cell, op_value):
        for bfe in self.bfes:
            op = bfe.op
            if op.kind is not op_kind:
                continue
            if not op.is_wait and op.cell != op_cell:
                continue
            if op.is_write and op.value != op_value:
                continue
            if bfe.state.matches(state):
                return bfe
        return None

    # -- hooks ----------------------------------------------------------------

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        from ..memory.operations import OpKind

        if address in (self.a, self.b):
            state = self._pair_state(memory)
            bfe = self._matching(
                state, OpKind.WRITE, self._cell_of(address), value
            )
            if bfe is not None and bfe.kind is BFEKind.DELTA:
                self._apply_faulty_next(memory, bfe, state)
                return
        memory.raw[address] = value

    def on_read(self, memory: MemoryArray, address: int) -> object:
        from ..memory.operations import OpKind

        if address not in (self.a, self.b):
            return memory.raw[address]
        state = self._pair_state(memory)
        good = memory.raw[address]
        bfe = self._matching(state, OpKind.READ, self._cell_of(address), None)
        if bfe is None:
            return good
        if bfe.kind is BFEKind.LAMBDA:
            return bfe.faulty_output
        # Destructive read: the state deviates, the output is the good
        # pre-read value.
        self._apply_faulty_next(memory, bfe, state)
        return good

    def on_wait(self, memory: MemoryArray) -> None:
        from ..memory.operations import OpKind

        state = self._pair_state(memory)
        bfe = self._matching(state, OpKind.WAIT, None, None)
        if bfe is not None and bfe.kind is BFEKind.DELTA:
            self._apply_faulty_next(memory, bfe, state)


class GenericPairFault(FaultModel):
    """A fault model whose simulator instances are derived from its BFEs.

    One physical fault per class: the behavioural machine of a class
    exhibits **all** member deviations simultaneously (the members are
    detection alternatives of the same fault, per Section 5).

    >>> from repro.faults.bfe import delta_bfe
    >>> from repro.memory.operations import write
    >>> from repro.memory.state import MemoryState
    >>> bfe = delta_bfe(MemoryState.parse("01"), write("i", 1),
    ...                 MemoryState.parse("-0"))
    >>> model = GenericPairFault("MYCF", [BFEClass("c", (bfe,))])
    >>> len(model.instances(3))
    3
    """

    def __init__(self, name: str, classes: Sequence[BFEClass]) -> None:
        self.name = name
        self._classes = tuple(classes)

    def classes(self, cells: Sequence[str] = ("i", "j")) -> Tuple[BFEClass, ...]:
        if tuple(cells) != ("i", "j"):
            raise ValueError("GenericPairFault is defined over (i, j)")
        return self._classes

    def instances(self, size: int) -> Tuple[FaultCase, ...]:
        cases = []
        for cls in self._classes:
            if cls.cell_symmetric:
                pairs = [(a, (a + 1) % size) for a in range(size)]
            else:
                # The paper's convention: address(i) < address(j).  A
                # class covering the opposite direction is a separate
                # class with the roles swapped (as the library models
                # do), so placements keep i at the lower address.
                pairs = [
                    (a, b) for a in range(size) for b in range(size) if a < b
                ]
            for a, b in pairs:
                cases.append(
                    FaultCase(
                        f"{cls.name} @({a},{b})",
                        (
                            lambda members=cls.members, a=a, b=b:
                            PairBFEInstance(members, a, b),
                        ),
                    )
                )
        return tuple(cases)
