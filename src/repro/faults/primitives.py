"""Fault primitive notation ``<S, F>``.

The paper (after van de Goor [9]) denotes a two-cell fault by
``<S, F>`` where ``S`` is the *sensitizing* condition on the first
(aggressor) cell and ``F`` the resulting *faulty effect* on the second
(victim) cell.  Examples: ``<up, 0>`` is the idempotent coupling fault
"an up transition of the aggressor forces the victim to 0";
``<updown, inv>`` is the inversion coupling fault.

Single-cell faults use the degenerate form where the sensitizing
condition and the effect apply to the same cell (e.g. the up transition
fault is ``<up, 0>`` *on one cell*: a rising write that leaves the cell
at 0).

This module provides a small parser/formatter for the notation used in
fault-model labels and by :mod:`repro.faults.library`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class Sensitization(enum.Enum):
    """Aggressor conditions of the ``<S, F>`` notation."""

    ZERO = "0"            # aggressor holds 0
    ONE = "1"             # aggressor holds 1
    UP = "up"             # 0 -> 1 write transition
    DOWN = "down"         # 1 -> 0 write transition
    ANY_TRANSITION = "updown"  # any write transition
    READ = "r"            # a read of the aggressor/victim
    WAIT = "T"            # a retention period elapses

    @property
    def is_transition(self) -> bool:
        return self in (
            Sensitization.UP,
            Sensitization.DOWN,
            Sensitization.ANY_TRANSITION,
        )

    @property
    def is_state(self) -> bool:
        return self in (Sensitization.ZERO, Sensitization.ONE)


class Effect(enum.Enum):
    """Victim effects of the ``<S, F>`` notation."""

    FORCE_0 = "0"   # victim forced to 0
    FORCE_1 = "1"   # victim forced to 1
    INVERT = "inv"  # victim inverted
    NO_CHANGE = "stay"  # the sensitizing transition itself fails

    def apply(self, value: object) -> object:
        """Victim value after the effect fires."""
        if self is Effect.FORCE_0:
            return 0
        if self is Effect.FORCE_1:
            return 1
        if self is Effect.INVERT:
            if value in (0, 1):
                return 1 - int(value)  # type: ignore[arg-type]
            return value
        return value


_SENS_ALIASES = {
    "0": Sensitization.ZERO,
    "1": Sensitization.ONE,
    "up": Sensitization.UP,
    "^": Sensitization.UP,
    "down": Sensitization.DOWN,
    "v": Sensitization.DOWN,
    "updown": Sensitization.ANY_TRANSITION,
    "^v": Sensitization.ANY_TRANSITION,
    "r": Sensitization.READ,
    "t": Sensitization.WAIT,
}

_EFFECT_ALIASES = {
    "0": Effect.FORCE_0,
    "1": Effect.FORCE_1,
    "inv": Effect.INVERT,
    "~": Effect.INVERT,
    "stay": Effect.NO_CHANGE,
    "=": Effect.NO_CHANGE,
}


@dataclass(frozen=True)
class MaskTransition:
    """One bitwise lane-update rule of the word-packed simulator.

    The bit-parallel engine (:mod:`repro.simulator.bitengine`)
    represents an n-cell memory as per-cell bitmask pairs ``(value,
    defined)`` whose bit ``L`` holds lane ``L``'s cell value and whether
    it is a definite binary value rather than ``'-'``.  A fault
    primitive whose semantics are *local to one cell* compiles to a
    ``MaskTransition``: a trigger operation plus a required stored
    value, under which the lane's stored and/or reported bit inverts (or
    the triggering write is dropped).  The engine evaluates a rule for
    every lane at once::

        fired = lane_mask & defined & (value if old_value else ~value)

    Attributes
    ----------
    trigger:
        ``"w"`` (a write to the cell), ``"r"`` (a read of the cell) or
        ``"T"`` (a retention period).
    old_value:
        Stored binary value the cell must hold for the rule to fire
        (a ``'-'`` cell never fires: the ``defined`` mask gates it).
    trigger_value:
        For ``"w"`` rules, the written value arming the rule; ``None``
        for read/wait rules.
    lose_write:
        The triggering write is silently dropped (transition faults).
    flip_store:
        The stored bit inverts when the rule fires.
    flip_report:
        For ``"r"`` rules, the reported bit inverts relative to the
        stored pre-state (wrong-value reads).
    """

    trigger: str
    old_value: int
    trigger_value: Optional[int] = None
    lose_write: bool = False
    flip_store: bool = False
    flip_report: bool = False

    def __post_init__(self) -> None:
        if self.trigger not in ("w", "r", "T"):
            raise ValueError("mask-transition trigger must be w, r or T")
        if self.old_value not in (0, 1):
            raise ValueError("mask-transition old value must be binary")
        if (self.trigger == "w") != (self.trigger_value is not None):
            raise ValueError("write rules (and only they) carry a"
                             " trigger value")


@dataclass(frozen=True)
class FaultPrimitive:
    """A parsed ``<S, F>`` fault primitive.

    ``two_cell`` distinguishes coupling primitives (aggressor and victim
    are distinct cells) from single-cell primitives.
    """

    sensitization: Sensitization
    effect: Effect
    two_cell: bool = True

    def __str__(self) -> str:
        return f"<{self.sensitization.value},{self.effect.value}>"

    @property
    def sensitizing_writes(self) -> Tuple[Tuple[int, int], ...]:
        """(initial value, written value) pairs realizing ``S``.

        Only meaningful for transition/state sensitizations; state
        conditions return an empty tuple (no write required).
        """
        if self.sensitization is Sensitization.UP:
            return ((0, 1),)
        if self.sensitization is Sensitization.DOWN:
            return ((1, 0),)
        if self.sensitization is Sensitization.ANY_TRANSITION:
            return ((0, 1), (1, 0))
        return ()

    @property
    def lane_packable(self) -> bool:
        """Whether the primitive's effect is expressible lane-locally.

        Transition, read and wait sensitizations condition only on the
        affected cell's own stored value, so they compile to
        :class:`MaskTransition` rules evaluated in O(1) bitwise
        operations per lane word.  State sensitizations (``<0,F>`` /
        ``<1,F>``) hold *continuously* while another cell sits in a
        state; the packed engine handles them through dedicated
        aggressor/victim coupling groups instead of per-lane mask
        rules, and behaviours that are not primitives at all (the
        stuck-open sense-amplifier latch, the address-decoder
        redirects) get their own dedicated word encodings in
        :mod:`repro.simulator.bitengine` rather than mask transitions.
        """
        return not self.sensitization.is_state

    def mask_transitions(self) -> Tuple[MaskTransition, ...]:
        """Compile the primitive to word-packed lane-update rules.

        An empty tuple means the (lane-packable) primitive never
        deviates from the good machine (e.g. ``<up,1>``: forcing a
        rising cell to 1 is exactly the good behaviour).
        """
        if not self.lane_packable:
            raise ValueError(
                f"state-sensitized primitive {self} has no lane-local"
                " mask transitions; use the coupling-group encoding"
            )
        sens, effect = self.sensitization, self.effect
        if sens.is_transition:
            out = []
            for start, written in self.sensitizing_writes:
                if effect is Effect.FORCE_0:
                    final = 0
                elif effect is Effect.FORCE_1:
                    final = 1
                else:  # NO_CHANGE and INVERT both leave the start value
                    final = start
                if final != written:
                    out.append(
                        MaskTransition(
                            "w", old_value=start, trigger_value=written,
                            lose_write=True,
                        )
                    )
            return tuple(out)
        if sens is Sensitization.READ:
            if effect is Effect.NO_CHANGE:
                return ()
            if effect is Effect.INVERT:
                return tuple(
                    MaskTransition("r", old_value=v, flip_store=True,
                                   flip_report=True)
                    for v in (0, 1)
                )
            forced = 0 if effect is Effect.FORCE_0 else 1
            return (
                MaskTransition("r", old_value=1 - forced, flip_store=True,
                               flip_report=True),
            )
        # WAIT: the cell decays during a retention period.
        if effect is Effect.NO_CHANGE:
            return ()
        if effect is Effect.INVERT:
            return tuple(
                MaskTransition("T", old_value=v, flip_store=True)
                for v in (0, 1)
            )
        forced = 0 if effect is Effect.FORCE_0 else 1
        return (MaskTransition("T", old_value=1 - forced, flip_store=True),)


def parse_primitive(text: str) -> FaultPrimitive:
    """Parse ``"<up,0>"``-style notation.

    >>> parse_primitive("<up,0>")
    FaultPrimitive(sensitization=<Sensitization.UP: 'up'>, effect=<Effect.FORCE_0: '0'>, two_cell=True)
    """
    body = text.strip()
    if body.startswith("<") and body.endswith(">"):
        body = body[1:-1]
    parts = [p.strip().lower() for p in body.replace(";", ",").split(",")]
    if len(parts) != 2:
        raise ValueError(f"malformed fault primitive {text!r}")
    sens_text, effect_text = parts
    try:
        sens = _SENS_ALIASES[sens_text]
    except KeyError:
        raise ValueError(f"unknown sensitization {sens_text!r}") from None
    try:
        effect = _EFFECT_ALIASES[effect_text]
    except KeyError:
        raise ValueError(f"unknown effect {effect_text!r}") from None
    return FaultPrimitive(sens, effect)
