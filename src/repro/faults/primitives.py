"""Fault primitive notation ``<S, F>``.

The paper (after van de Goor [9]) denotes a two-cell fault by
``<S, F>`` where ``S`` is the *sensitizing* condition on the first
(aggressor) cell and ``F`` the resulting *faulty effect* on the second
(victim) cell.  Examples: ``<up, 0>`` is the idempotent coupling fault
"an up transition of the aggressor forces the victim to 0";
``<updown, inv>`` is the inversion coupling fault.

Single-cell faults use the degenerate form where the sensitizing
condition and the effect apply to the same cell (e.g. the up transition
fault is ``<up, 0>`` *on one cell*: a rising write that leaves the cell
at 0).

This module provides a small parser/formatter for the notation used in
fault-model labels and by :mod:`repro.faults.library`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Sensitization(enum.Enum):
    """Aggressor conditions of the ``<S, F>`` notation."""

    ZERO = "0"            # aggressor holds 0
    ONE = "1"             # aggressor holds 1
    UP = "up"             # 0 -> 1 write transition
    DOWN = "down"         # 1 -> 0 write transition
    ANY_TRANSITION = "updown"  # any write transition
    READ = "r"            # a read of the aggressor/victim
    WAIT = "T"            # a retention period elapses

    @property
    def is_transition(self) -> bool:
        return self in (
            Sensitization.UP,
            Sensitization.DOWN,
            Sensitization.ANY_TRANSITION,
        )

    @property
    def is_state(self) -> bool:
        return self in (Sensitization.ZERO, Sensitization.ONE)


class Effect(enum.Enum):
    """Victim effects of the ``<S, F>`` notation."""

    FORCE_0 = "0"   # victim forced to 0
    FORCE_1 = "1"   # victim forced to 1
    INVERT = "inv"  # victim inverted
    NO_CHANGE = "stay"  # the sensitizing transition itself fails

    def apply(self, value: object) -> object:
        """Victim value after the effect fires."""
        if self is Effect.FORCE_0:
            return 0
        if self is Effect.FORCE_1:
            return 1
        if self is Effect.INVERT:
            if value in (0, 1):
                return 1 - int(value)  # type: ignore[arg-type]
            return value
        return value


_SENS_ALIASES = {
    "0": Sensitization.ZERO,
    "1": Sensitization.ONE,
    "up": Sensitization.UP,
    "^": Sensitization.UP,
    "down": Sensitization.DOWN,
    "v": Sensitization.DOWN,
    "updown": Sensitization.ANY_TRANSITION,
    "^v": Sensitization.ANY_TRANSITION,
    "r": Sensitization.READ,
    "t": Sensitization.WAIT,
}

_EFFECT_ALIASES = {
    "0": Effect.FORCE_0,
    "1": Effect.FORCE_1,
    "inv": Effect.INVERT,
    "~": Effect.INVERT,
    "stay": Effect.NO_CHANGE,
    "=": Effect.NO_CHANGE,
}


@dataclass(frozen=True)
class FaultPrimitive:
    """A parsed ``<S, F>`` fault primitive.

    ``two_cell`` distinguishes coupling primitives (aggressor and victim
    are distinct cells) from single-cell primitives.
    """

    sensitization: Sensitization
    effect: Effect
    two_cell: bool = True

    def __str__(self) -> str:
        return f"<{self.sensitization.value},{self.effect.value}>"

    @property
    def sensitizing_writes(self) -> Tuple[Tuple[int, int], ...]:
        """(initial value, written value) pairs realizing ``S``.

        Only meaningful for transition/state sensitizations; state
        conditions return an empty tuple (no write required).
        """
        if self.sensitization is Sensitization.UP:
            return ((0, 1),)
        if self.sensitization is Sensitization.DOWN:
            return ((1, 0),)
        if self.sensitization is Sensitization.ANY_TRANSITION:
            return ((0, 1), (1, 0))
        return ()


def parse_primitive(text: str) -> FaultPrimitive:
    """Parse ``"<up,0>"``-style notation.

    >>> parse_primitive("<up,0>")
    FaultPrimitive(sensitization=<Sensitization.UP: 'up'>, effect=<Effect.FORCE_0: '0'>, two_cell=True)
    """
    body = text.strip()
    if body.startswith("<") and body.endswith(">"):
        body = body[1:-1]
    parts = [p.strip().lower() for p in body.replace(";", ",").split(",")]
    if len(parts) != 2:
        raise ValueError(f"malformed fault primitive {text!r}")
    sens_text, effect_text = parts
    try:
        sens = _SENS_ALIASES[sens_text]
    except KeyError:
        raise ValueError(f"unknown sensitization {sens_text!r}") from None
    try:
        effect = _EFFECT_ALIASES[effect_text]
    except KeyError:
        raise ValueError(f"unknown effect {effect_text!r}") from None
    return FaultPrimitive(sens, effect)
