"""Comparative analysis of March tests.

Utilities a test engineer would actually use on top of the generator:

* :func:`coverage_report` -- which fault models a test covers, with
  per-case detail;
* :func:`compare` -- side-by-side coverage of several tests;
* :func:`dominates` -- test A detects everything B detects (and is no
  longer);
* :func:`minimal_certificate` -- exhaustively certify that no shorter
  March test (within the canonical grammar) covers a fault list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .core.exhaustive import SearchStats, exhaustive_search
from .faults.faultlist import FaultList
from .kernel import DEFAULT_SIZE, SimulationKernel, get_default_kernel
from .march.test import MarchTest


@dataclass
class ModelCoverage:
    """Coverage of one fault model by one test."""

    model: str
    detected: List[str] = field(default_factory=list)
    missed: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.missed

    @property
    def ratio(self) -> float:
        total = len(self.detected) + len(self.missed)
        return len(self.detected) / total if total else 1.0


@dataclass
class CoverageReport:
    """Per-model coverage of a test."""

    test: MarchTest
    models: List[ModelCoverage]

    @property
    def complete_models(self) -> Tuple[str, ...]:
        return tuple(m.model for m in self.models if m.complete)

    def __str__(self) -> str:
        lines = [f"{self.test.name or self.test} ({self.test.complexity_label})"]
        for m in self.models:
            status = "full" if m.complete else f"{m.ratio * 100:.0f}%"
            lines.append(f"  {m.model:8s} {status}")
        return "\n".join(lines)


def coverage_report(
    test: MarchTest,
    faults: FaultList,
    size: int = DEFAULT_SIZE,
    kernel: Optional[SimulationKernel] = None,
) -> CoverageReport:
    """Evaluate a test against every model of a fault list.

    Per-model verdicts are resolved in one kernel batch, so a process
    backend can chunk the whole report across workers.
    """
    kernel = kernel or get_default_kernel()
    models = []
    for model in faults:
        cases = model.instances(size)
        report = kernel.simulate(test, cases, size) if cases else None
        entry = ModelCoverage(model.name)
        if report is not None:
            entry.detected.extend(report.detected)
            entry.missed.extend(report.missed)
        models.append(entry)
    return CoverageReport(test, models)


def compare(
    tests: Sequence[MarchTest],
    faults: FaultList,
    size: int = DEFAULT_SIZE,
    kernel: Optional[SimulationKernel] = None,
) -> Dict[str, CoverageReport]:
    """Coverage reports for several tests over the same fault list."""
    kernel = kernel or get_default_kernel()
    # Warm the shared fault dictionary in one batch before the
    # per-model reports slice it up.
    kernel.simulate_many(list(tests), faults.instances(size), size)
    return {
        (test.name or str(test)): coverage_report(test, faults, size, kernel)
        for test in tests
    }


def dominates(
    first: MarchTest,
    second: MarchTest,
    faults: FaultList,
    size: int = DEFAULT_SIZE,
    kernel: Optional[SimulationKernel] = None,
) -> bool:
    """True when ``first`` detects every case ``second`` detects while
    being no more complex."""
    if first.complexity > second.complexity:
        return False
    kernel = kernel or get_default_kernel()
    for fault_case in faults.instances(size):
        if kernel.detects(second, fault_case, size) and not kernel.detects(
            first, fault_case, size
        ):
            return False
    return True


@dataclass
class MinimalityCertificate:
    """Result of an exhaustive minimality check."""

    faults: Tuple[str, ...]
    complexity: int
    is_minimal: bool
    shorter_test: Optional[MarchTest]
    candidates_tested: int
    exhausted: bool

    def __str__(self) -> str:
        verdict = (
            "minimal" if self.is_minimal
            else f"beaten by {self.shorter_test}"
        )
        suffix = "" if self.exhausted else " (budget hit: inconclusive)"
        return (
            f"{'+'.join(self.faults)} at {self.complexity}n: {verdict}"
            f" [{self.candidates_tested} candidates]{suffix}"
        )


def minimal_certificate(
    test: MarchTest,
    faults: FaultList,
    size: int = 2,
    budget: Optional[int] = 200000,
    kernel: Optional[SimulationKernel] = None,
) -> MinimalityCertificate:
    """Certify (within the canonical grammar and budget) that no March
    test shorter than ``test`` covers ``faults``."""
    verify = (kernel or get_default_kernel()).verifier(
        faults.instances(size), size
    )
    if not verify(test):
        raise ValueError("the test does not cover the fault list itself")
    stats = SearchStats()
    shorter = exhaustive_search(
        verify,
        max_complexity=test.complexity - 1,
        budget=budget,
        stats=stats,
    )
    exhausted = budget is None or stats.candidates_tested <= budget
    return MinimalityCertificate(
        faults.names,
        test.complexity,
        shorter is None,
        shorter,
        stats.candidates_tested,
        exhausted,
    )
