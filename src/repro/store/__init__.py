"""Persistent fault-dictionary store + campaign runner subsystem.

* :mod:`repro.store.store` -- the SQLite-backed, concurrency-safe,
  schema-versioned verdict store (WAL, atomic upserts keyed by
  ``SimKey``, corrupt-file quarantine-and-rebuild, readonly mode);
* :mod:`repro.store.tiered` -- the write-through/read-through second
  tier the kernel layers under its in-memory LRU;
* :mod:`repro.store.resilience` -- retry/backoff policy and the
  degraded-mode spill wrapper the service client and campaign runner
  build on (see the README section "Resilience & fault injection");
* :mod:`repro.store.campaign` -- the declarative batch runner behind
  ``repro campaign`` (import it directly: it depends on the kernel
  package, which imports *this* package at startup).

See the README section "Persistent results & campaigns".
"""

from .resilience import (
    DegradingStore,
    RetryExhaustedError,
    RetryPolicy,
    TransientStoreError,
)
from .store import (
    BUSY_TIMEOUT_SECONDS,
    SCHEMA_VERSION,
    CorruptStoreError,
    FaultDictionaryStore,
    StoreError,
    StoreSchemaError,
    StoreStats,
    decode_verdict,
    encode_verdict,
    resolve_store,
)
from .tiered import TieredCache

__all__ = [
    "BUSY_TIMEOUT_SECONDS",
    "CorruptStoreError",
    "DegradingStore",
    "FaultDictionaryStore",
    "RetryExhaustedError",
    "RetryPolicy",
    "SCHEMA_VERSION",
    "StoreError",
    "TransientStoreError",
    "StoreSchemaError",
    "StoreStats",
    "TieredCache",
    "decode_verdict",
    "encode_verdict",
    "resolve_store",
]
