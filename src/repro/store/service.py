"""The verdict service: a long-lived daemon wrapping one shared store.

PR 3 gave every process a direct SQLite connection to the shared
fault-dictionary file, and PR 4 fanned campaigns out over worker pools
hammering that one WAL.  Both scale as far as a filesystem scales: every
client needs the file (same host or same network mount), every writer
takes the write lock itself, and cross-host fan-out had to fall back to
ship-a-shard-and-merge.  This module is the next step of the ROADMAP's
store lineage: **one** process owns the writable
:class:`~repro.store.store.FaultDictionaryStore`, and everything else
talks to it over a Unix domain socket -- clients stop opening SQLite
files at all.

Protocol
--------
Length-prefixed JSON frames: a 4-byte big-endian byte count, then one
UTF-8 JSON object.  Requests carry an ``"op"`` field::

    {"op": "ping", "tenant": "team-a"}
    {"op": "get_many", "keys": [[signature, case, size, domain], ...]}
    {"op": "put_many", "rows": [[signature, case, size, domain, verdict], ...]}
    {"op": "stats"}
    {"op": "health"}
    {"op": "metrics"}
    {"op": "compact", "max_rows": N, "max_age": S, "vacuum": true}
    {"op": "shutdown", "drain": true}

Responses are JSON objects with ``"ok"``; errors come back as
``{"ok": false, "error": "..."}`` instead of killing the connection.
Verdicts cross the wire in the store's canonical row encoding
(:func:`~repro.store.store.encode_verdict`), so detection booleans and
diagnosis syndromes round-trip byte-identically.  ``ping`` doubles as
the handshake: a verdict service always answers with the
:data:`SERVICE_MAGIC` tag and its protocol generation, so a client (or
a second server racing for the socket) can tell a live service from a
stale socket file or a foreign listener -- foreign sockets are refused,
never unlinked.  Requests on one connection may be **pipelined**: a
client may send any number of frames back-to-back without waiting, and
the server answers every frame, in order, exactly once.  The normative
specification of all of this lives in ``docs/PROTOCOL.md``; the
`wire-contract` rule of ``repro lint`` (run by the `static-analysis`
CI job) keeps that document and this module in lockstep.

Topology
--------
* :class:`VerdictService` -- the server (``repro serve STORE --socket
  SOCK``): a **single-threaded selectors event loop** -- non-blocking
  accept/read/write, a per-connection frame buffer feeding a pipelined
  dispatch, an in-daemon hot LRU in front of SQLite so read-mostly
  traffic never touches disk, per-client/tenant ledger namespaces with
  optional request quotas, and drain-then-exit rolling-restart support
  (``shutdown {"drain": true}``).  Every batch still lands on the store
  through the store's own lock, so the concurrency discipline is
  unchanged from the threaded daemon -- there is simply no longer a
  thread per client to schedule or leak.
* :class:`ServiceStore` -- the client: the same
  ``get``/``get_many``/``put``/``put_many``/``stats`` surface as
  :class:`~repro.store.store.FaultDictionaryStore`, so
  :class:`~repro.store.tiered.TieredCache` and
  :class:`~repro.kernel.kernel.SimulationKernel` cannot tell the
  difference.  Pass a ``repro+unix:///path/to.sock`` URL anywhere a
  store path is accepted (``--store``, ``GeneratorConfig.store_path``,
  campaign specs) and :func:`~repro.store.store.resolve_store`
  dispatches here.  Connections are lazy and self-healing: transient
  failures (daemon restart, connection reset, timeout, a desynced
  stream after a *successful* handshake) raise
  :class:`ServiceUnavailableError` and are retried with exponential
  backoff under an injectable
  :class:`~repro.store.resilience.RetryPolicy`, while permanent
  errors (protocol mismatch, foreign listener, a refused request)
  fail fast no matter the retry budget.  :meth:`ServiceStore.pipeline`
  exposes the wire protocol's pipelining to callers that want many
  requests in flight on one connection.

Resilience (PR 7)
-----------------
The daemon reaps idle clients (``--idle-timeout``: connections quiet
past the budget are closed and their ledger entries retired; retrying
clients reconnect transparently), checkpoints its WAL on a loop timer
(``--checkpoint-interval``) so a SIGKILL loses at most the last
interval's WAL growth, and answers a ``health`` op (uptime, connection
counts, reaped/checkpoint/error counters) next to ``ping`` -- the
``repro store ping`` liveness probe.  A ``merge`` op folds a
server-local store file (in practice a campaign worker's degraded
spill shard) into the served dictionary without a second writer ever
opening it.  The operator's view of all of this -- start/stop, lock
semantics, tuning, probing, rolling restarts -- is written down in
``docs/OPERATIONS.md``.

``repro campaign --jobs N --store repro+unix://...`` is the designated
cross-host fan-out substrate: N concurrent writers become N socket
clients of one serialized WAL owner, with no shard-and-merge step.

This module depends on :mod:`repro.kernel` (for :class:`SimKey`), which
imports the store package at startup -- import it as
``repro.store.service`` directly, never from ``repro.store``'s
namespace (the same rule as :mod:`repro.store.campaign`).
"""

from __future__ import annotations

import fcntl
import json
import os
import selectors
import socket
import stat
import struct
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..kernel.cache import SimKey
from ..telemetry import Telemetry
from .resilience import (
    RetryExhaustedError,
    RetryPolicy,
    TransientStoreError,
)
from .store import (
    SCHEMA_VERSION,
    SERVICE_URL_PREFIX,
    FaultDictionaryStore,
    StoreError,
    StoreStats,
    decode_verdict,
    encode_verdict,
)

#: Generation of the wire protocol.  Bump on incompatible frame or op
#: changes; a client refuses to talk to a server of another generation.
#: Additive evolution (new ops, new optional request fields, new
#: response fields) stays within a generation -- see docs/PROTOCOL.md.
PROTOCOL_VERSION = 1

#: The handshake tag every ping answer carries.  A listener that does
#: not identify with it is a foreign server: refused, never replaced.
SERVICE_MAGIC = "repro-verdict-service"

#: Every op the daemon dispatches.  ``benchmarks/check_protocol_doc.py``
#: asserts this registry and the op table in docs/PROTOCOL.md agree, so
#: the spec cannot silently drift from the implementation.
SERVICE_OPS = (
    "ping",
    "get_many",
    "put_many",
    "stats",
    "health",
    "metrics",
    "merge",
    "compact",
    "shutdown",
)

#: Ops never counted against a tenant's request quota: liveness and
#: control-plane traffic (an operator must always be able to probe and
#: stop a daemon whose tenants are over budget).  Data-plane ops --
#: get_many/put_many/stats/merge/compact -- are metered.
QUOTA_EXEMPT_OPS = frozenset({"ping", "health", "metrics", "shutdown"})

#: Hard ceiling on one frame's body.  Real batches are a few megabytes
#: at most; a larger announced length means the peer is not speaking
#: this protocol (e.g. an HTTP client hitting the socket).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Socket send/receive timeout for clients and the server's probe of a
#: possibly-stale socket.  Generous: a ``compact`` VACUUM of a huge
#: dictionary is the slowest legitimate request.
DEFAULT_TIMEOUT_SECONDS = 120.0

#: Per-connection idle budget on the *server* side.  Generous -- a
#: campaign worker legitimately goes quiet for minutes while its
#: backend simulates between store batches -- but finite: one idle (or
#: wedged) client may no longer pin server state forever.  Reaped
#: clients lose only a socket; a retrying :class:`ServiceStore`
#: reconnects transparently on its next request.
DEFAULT_IDLE_TIMEOUT_SECONDS = 900.0

#: Period of the daemon's background WAL checkpoint.  A PASSIVE
#: checkpoint every interval bounds how much committed-but-unfolded
#: WAL a SIGKILL can leave behind (the data is durable either way;
#: this bounds recovery work and WAL file growth).
DEFAULT_CHECKPOINT_INTERVAL_SECONDS = 60.0

#: Entry cap of the daemon's in-memory hot LRU.  Entries are one
#: canonical encoded verdict each (tens of bytes); the default is
#: sized so a read-mostly campaign's working set is served without
#: touching SQLite at all.  ``0`` disables the tier.
DEFAULT_HOT_LRU_SIZE = 65536

#: Concurrent-connection ceiling.  The event loop itself scales far
#: past this; the cap bounds per-connection buffer memory and gives
#: operators back-pressure they can see (``rejected_full`` counter).
#: Over-cap connects are closed immediately -- a retrying client sees
#: a transient hangup and backs off.
DEFAULT_MAX_CLIENTS = 512

#: Ledger namespace for connections that never named a tenant.
DEFAULT_TENANT = "default"

#: How many *disconnected* clients keep an individual entry in the
#: per-client ledger.  A long-lived daemon serves an unbounded client
#: stream (every campaign worker is one connection); beyond this cap
#: the oldest retirees are folded into one ``retired`` aggregate so
#: the ledger -- and the ``stats`` payload -- stays bounded while the
#: write-accounting invariant (per-client + retired == store writes)
#: still holds.
MAX_CLIENT_LEDGER = 4096

_HEADER = struct.Struct(">I")

#: Selector registration tag for the loop's self-wake pipe.
_WAKE = "wake"


class ServiceError(StoreError):
    """The verdict service (or its socket) cannot serve the request."""


class ServiceUnavailableError(ServiceError, TransientStoreError):
    """Transient service failure: nothing answered, the peer hung up,
    or the connection desynced after a successful handshake.  Worth
    retrying (the :class:`~repro.store.resilience.TransientStoreError`
    marker routes it into :class:`RetryPolicy` backoff and
    :class:`~repro.store.resilience.DegradingStore` demotion); plain
    :class:`ServiceError` stays permanent and fails fast."""


def is_service_url(target: Any) -> bool:
    """True when ``target`` is a ``repro+unix://`` service URL."""
    return isinstance(target, str) and target.startswith(SERVICE_URL_PREFIX)


def service_socket_path(target: Union[str, Path]) -> Path:
    """The socket path behind a service URL (bare paths pass through)."""
    if isinstance(target, Path):
        return target
    if is_service_url(target):
        target = target[len(SERVICE_URL_PREFIX):]
        if not target:
            raise ServiceError(
                f"service URL names no socket path"
                f" (expected {SERVICE_URL_PREFIX}/path/to.sock)"
            )
    return Path(target)


def service_url(socket_path: Union[str, Path]) -> str:
    """The ``repro+unix://`` URL for a socket path."""
    return SERVICE_URL_PREFIX + str(socket_path)


# -- framing ---------------------------------------------------------------------


def _encode_frame(payload: Dict[str, Any]) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(body)) + body


def _send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    sock.sendall(_encode_frame(payload))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or ``None`` on a clean EOF."""
    chunks: List[bytes] = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on EOF, :class:`ServiceError` on garbage."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServiceError(
            f"peer announced a {length}-byte frame (limit"
            f" {MAX_FRAME_BYTES}); it is not speaking the verdict-service"
            " protocol"
        )
    body = _recv_exact(sock, length)
    if body is None:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(
            f"undecodable verdict-service frame: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise ServiceError("verdict-service frames must be JSON objects")
    return payload


# -- wire form of keys and rows --------------------------------------------------


def _wire_key(key: "SimKey") -> List[Any]:
    return [key.signature, key.case, key.size, key.domain]


def _key_from_wire(row: Any) -> "SimKey":
    if not isinstance(row, (list, tuple)) or len(row) != 4:
        raise ServiceError(f"malformed wire key {row!r}")
    signature, case, size, domain = row
    if not (isinstance(signature, str) and isinstance(case, str)
            and isinstance(size, int) and isinstance(domain, str)):
        raise ServiceError(f"malformed wire key {row!r}")
    return SimKey(signature, case, size, domain)


# -- the client ------------------------------------------------------------------


class ServiceStore:
    """A verdict store served over a Unix socket instead of a file.

    Drop-in for :class:`FaultDictionaryStore` wherever the kernel or
    the campaign runner uses one: same lookup/write surface, same
    :class:`StoreStats` counters (this client's view; the server keeps
    its own per-client ledger).  ``readonly=True`` is enforced
    client-side exactly like the file store's readonly mode: puts
    become counted no-ops and ``compact`` is refused.  ``tenant``
    names the ledger namespace this client's requests are accounted
    (and, when the daemon enforces ``--quota``, metered) under.

    >>> client = ServiceStore("repro+unix:///tmp/verdict.sock")  # doctest: +SKIP
    >>> client.get_many(keys)                                    # doctest: +SKIP
    """

    def __init__(
        self,
        target: Union[str, Path],
        readonly: bool = False,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
        retry: Optional[RetryPolicy] = None,
        tenant: Optional[str] = None,
    ) -> None:
        self.socket_path = service_socket_path(target)
        self.url = service_url(self.socket_path)
        self.readonly = readonly
        self.timeout = timeout
        #: Tenant namespace announced in the handshake (``None``:
        #: the server's :data:`DEFAULT_TENANT`).
        self.tenant = tenant
        #: Transient-failure policy; default rides out a short daemon
        #: restart.  ``RetryPolicy.no_retry()`` restores fail-fast.
        self.retry = retry if retry is not None else RetryPolicy()
        #: How many transient failures this client has retried (each
        #: one cost a backoff sleep and a reconnect).
        self.retries = 0
        self.stats = StoreStats()
        #: The server's last handshake answer (pid, store path, schema).
        self.server: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    # -- connection -------------------------------------------------------------

    def _hello_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "ping"}
        if self.tenant:
            payload["tenant"] = self.tenant
        return payload

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(str(self.socket_path))
        except OSError as error:
            sock.close()
            raise ServiceUnavailableError(
                f"no verdict service at {self.socket_path}: {error};"
                " start one with `repro serve STORE --socket SOCK`"
            ) from error
        # Connected.  Transient vs permanent is decided by *how* the
        # handshake fails: a peer that hangs up (EOF, reset, timeout)
        # may be a daemon dying or restarting under us -- transient,
        # retried.  A peer that *answers wrongly* (garbage frames, a
        # foreign magic, another protocol generation) is definitely
        # not our service -- permanent, fail fast, never unlinked.
        try:
            _send_frame(sock, self._hello_payload())
            hello = _recv_frame(sock)
        except ServiceError as error:
            sock.close()
            raise ServiceError(
                f"{self.socket_path} is not a verdict service: {error}"
            ) from error
        except OSError as error:
            sock.close()
            raise ServiceUnavailableError(
                f"the verdict service at {self.socket_path} did not"
                f" complete the handshake ({error}); it may be"
                " restarting"
            ) from error
        if hello is None:
            sock.close()
            raise ServiceUnavailableError(
                f"the listener on {self.socket_path} hung up during"
                " the handshake; it may be a verdict service going"
                " down (or a foreign socket -- retries will tell)"
            )
        if hello.get("service") != SERVICE_MAGIC:
            sock.close()
            raise ServiceError(
                f"the listener on {self.socket_path} is not a verdict"
                " service (it did not answer the handshake); refusing"
                " to talk to it"
            )
        if hello.get("protocol") != PROTOCOL_VERSION:
            sock.close()
            raise ServiceError(
                f"verdict service on {self.socket_path} speaks protocol"
                f" {hello.get('protocol')}, this client speaks"
                f" {PROTOCOL_VERSION}"
            )
        self.server = hello
        return sock

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def _attempt_pipeline(
        self, payloads: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """One pipelined round trip on (at most) one connection.

        All request frames are written back-to-back, then all response
        frames are read in order -- the server guarantees one answer
        per frame, in request order.  Raises
        :class:`ServiceUnavailableError` for everything a fresh
        connection could plausibly cure -- the socket died, the server
        hung up mid-pipeline, or the stream desynced *after* a
        successful handshake (the handshake proved the peer speaks the
        protocol, so mid-stream garbage is transport corruption; the
        reconnect's fresh handshake re-verifies the peer and fails
        fast if it really turned foreign).  Well-framed ``ok: false``
        answers are returned in place, not raised: in a pipeline only
        the caller knows whether one refused request poisons the rest.
        """
        if self._sock is None:
            self._sock = self._connect()
        try:
            blob = bytearray()
            for payload in payloads:
                blob += _encode_frame(payload)
            self._sock.sendall(blob)
            responses: List[Dict[str, Any]] = []
            for _ in payloads:
                response = _recv_frame(self._sock)
                if response is None:
                    # Server went away mid-pipeline (restart, shutdown,
                    # reap).  The whole batch is retried: every op is
                    # idempotent, so at-least-once delivery is safe.
                    self._drop_connection()
                    raise ServiceUnavailableError(
                        f"verdict service at {self.socket_path} closed"
                        f" the connection {len(responses)} frame(s) into"
                        f" a {len(payloads)}-frame pipeline"
                    )
                responses.append(response)
            return responses
        except ServiceError as error:
            if isinstance(error, ServiceUnavailableError):
                raise
            # Broken framing: whatever else sits in the stream is
            # unusable (e.g. the body of an oversize frame).  Drop the
            # connection so the retry starts clean instead of reading
            # mid-body bytes as a header forever.
            self._drop_connection()
            raise ServiceUnavailableError(
                f"verdict-service connection to {self.socket_path}"
                f" desynced mid-stream: {error}"
            ) from error
        except OSError as error:
            self._drop_connection()
            raise ServiceUnavailableError(
                f"lost the verdict service at {self.socket_path}:"
                f" {error}"
            ) from error

    def _attempt(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One round trip; a well-framed ``ok: false`` answer is the
        server refusing the request: permanent, raised as
        :class:`ServiceError`."""
        response = self._attempt_pipeline([payload])[0]
        if not response.get("ok"):
            raise ServiceError(
                response.get("error")
                or "verdict service refused the request"
            )
        return response

    def _call_with_retry(self, attempt: Any) -> Any:
        def on_retry(
            attempt_no: int, delay: float, error: BaseException
        ) -> None:
            self.retries += 1

        with self._lock:
            try:
                return self.retry.call(attempt, on_retry=on_retry)
            except RetryExhaustedError as error:
                raise ServiceUnavailableError(
                    f"verdict service at {self.socket_path} still"
                    f" unavailable after {error.attempts} attempt(s)"
                    f" over {error.elapsed:.2f}s: {error.last_error}"
                ) from error

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request under the retry policy.

        Transient failures (:class:`ServiceUnavailableError`) are
        retried with the policy's backoff -- each retry reconnects and
        re-handshakes -- until the attempt or deadline budget runs
        out; permanent :class:`ServiceError`\\ s propagate on the first
        attempt.  Retrying a write is safe: every ``put_many`` is an
        idempotent batch of canonical upserts, so at-least-once
        delivery cannot corrupt the dictionary.
        """
        return self._call_with_retry(lambda: self._attempt(payload))

    def pipeline(
        self, payloads: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Send many request payloads down one connection back-to-back
        and return their responses in request order.

        This is the wire protocol's pipelining surface: no waiting
        between frames, one response per frame, order preserved.  The
        whole pipeline is one retry unit -- a transient failure
        anywhere replays *all* frames on a fresh connection (safe:
        every op is idempotent).  Responses are returned raw,
        including any ``{"ok": false}`` refusals; callers inspect per
        frame.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        return self._call_with_retry(
            lambda: self._attempt_pipeline(payloads)
        )

    # -- lookups ----------------------------------------------------------------

    def _lookup(self, keys: Sequence["SimKey"]) -> Dict["SimKey", Any]:
        """One ``get_many`` round trip, no client-side stat effects."""
        if not keys:
            return {}
        response = self._request(
            {"op": "get_many", "keys": [_wire_key(key) for key in keys]}
        )
        found: Dict["SimKey", Any] = {}
        for row in response.get("found", ()):
            if not isinstance(row, (list, tuple)) or len(row) != 5:
                raise ServiceError(f"malformed verdict row {row!r}")
            found[_key_from_wire(row[:4])] = decode_verdict(row[4])
        return found

    def get(self, key: "SimKey", default: Any = None) -> Any:
        found = self._lookup([key])
        if key in found:
            self.stats.hits += 1
            return found[key]
        self.stats.misses += 1
        return default

    def get_many(self, keys: Iterable["SimKey"]) -> Dict["SimKey", Any]:
        keys = list(keys)
        found = self._lookup(keys)
        self.stats.hits += len(found)
        self.stats.misses += len(keys) - len(found)
        return found

    def __contains__(self, key: "SimKey") -> bool:
        return key in self._lookup([key])

    def __len__(self) -> int:
        return self.row_stats()["rows"]

    # -- writes -----------------------------------------------------------------

    def put(self, key: "SimKey", value: Any) -> None:
        self.put_many([(key, value)])

    def put_many(self, pairs: Sequence[Tuple["SimKey", Any]]) -> None:
        pairs = list(pairs)
        if not pairs:
            return
        if self.readonly:
            self.stats.skipped_writes += len(pairs)
            return
        rows = [
            _wire_key(key) + [encode_verdict(value)] for key, value in pairs
        ]
        self._request({"op": "put_many", "rows": rows})
        self.stats.writes += len(rows)

    # -- service surface --------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Handshake round trip; returns the server's identity frame."""
        response = self._request(self._hello_payload())
        self.server = response
        return response

    def server_stats(self) -> Dict[str, Any]:
        """The server's full ledger: rows, store counters, per-client
        and per-tenant hit/miss/write counters (``repro store stats
        --socket``)."""
        response = self._request({"op": "stats"})
        return {k: v for k, v in response.items() if k != "ok"}

    def health(self) -> Dict[str, Any]:
        """The daemon's liveness report: uptime, connection counts,
        the resilience counters (idle reaps, checkpoints, errors,
        rejected/over-quota requests), hot-LRU occupancy, row
        population and service-time summary."""
        response = self._request({"op": "health"})
        return {k: v for k, v in response.items() if k != "ok"}

    def metrics(self) -> Dict[str, Any]:
        """The daemon's full metrics-registry snapshot (op ``metrics``):
        per-op request counters and service-time histograms, store and
        hot-LRU counters, WAL checkpoint timings, connection gauge."""
        return self._request({"op": "metrics"})["metrics"]

    def merge_from(
        self, source: Union[str, Path]
    ) -> Dict[str, int]:
        """Ask the daemon to fold a *server-local* store file into the
        dictionary it owns (``{"source_rows", "inserted", "merged"}``).

        This is how degraded campaign spill shards rejoin the main
        dictionary without a second process ever writing the served
        file.  ``source`` is resolved by the daemon; Unix-socket
        services are same-host by construction, so worker spill paths
        are visible to it.
        """
        if self.readonly:
            raise StoreError(
                "cannot merge through a readonly service client"
            )
        response = self._request(
            {"op": "merge", "source": str(source)}
        )
        return response["merged"]

    def resilience(self) -> Dict[str, Any]:
        """Retry/degradation counters in the shape the campaign
        manifest records per job (a plain client never degrades)."""
        return {
            "attempts": self.retries,
            "degraded": False,
            "spill": None,
        }

    def row_stats(self) -> Dict[str, Any]:
        """Row population of the served store (file-store parity)."""
        return self.server_stats()["row_stats"]

    def compact(
        self,
        max_rows: Optional[int] = None,
        max_age: Optional[float] = None,
        now: Optional[float] = None,
        vacuum: bool = True,
    ) -> Dict[str, Any]:
        """Ask the daemon to compact the store it owns."""
        if self.readonly:
            raise StoreError(
                "cannot compact through a readonly service client"
            )
        response = self._request({
            "op": "compact",
            "max_rows": max_rows,
            "max_age": max_age,
            "now": now,
            "vacuum": vacuum,
        })
        return response["compacted"]

    def shutdown_server(self, drain: bool = False) -> Dict[str, Any]:
        """Ask the daemon to stop gracefully (it checkpoints its WAL).

        ``drain=True`` requests the rolling-restart shutdown: the
        daemon immediately refuses new connections, finishes the
        batches already received from every connected client, flushes
        their responses, checkpoints the WAL, and only then exits --
        see docs/OPERATIONS.md.
        """
        payload: Dict[str, Any] = {"op": "shutdown"}
        if drain:
            payload["drain"] = True
        return self._request(payload)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Drop this client's connection (the server keeps running)."""
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "ServiceStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def describe(self) -> str:
        mode = " readonly" if self.readonly else ""
        return f"service [{self.socket_path.name}{mode}]: {self.stats}"


# -- the server ------------------------------------------------------------------


class _HotLru:
    """The daemon's in-memory read tier: SimKey -> canonical encoded row.

    Entries are the *wire* form of a verdict
    (:func:`~repro.store.store.encode_verdict` output), so a hit is a
    dict lookup away from the response frame -- no SQLite SELECT, no
    decode/encode round trip.  Mutated only on the event-loop thread;
    counters are plain ints read lock-free by metric collectors.
    """

    __slots__ = ("max_entries", "hits", "misses", "evictions", "_rows")

    def __init__(self, max_entries: int) -> None:
        self.max_entries = max(0, int(max_entries or 0))
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._rows: "OrderedDict[SimKey, str]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._rows)

    def get(self, key: "SimKey") -> Optional[str]:
        if not self.max_entries:
            return None
        encoded = self._rows.get(key)
        if encoded is None:
            self.misses += 1
            return None
        self._rows.move_to_end(key)
        self.hits += 1
        return encoded

    def put(self, key: "SimKey", encoded: str) -> None:
        if not self.max_entries:
            return
        self._rows[key] = encoded
        self._rows.move_to_end(key)
        while len(self._rows) > self.max_entries:
            self._rows.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop entries (counters survive: they are lifetime totals)."""
        self._rows.clear()


class _Connection:
    """One client connection's event-loop state: socket, frame buffers,
    ledger entry, idle clock."""

    __slots__ = (
        "client_id", "sock", "inbuf", "outbuf", "last_activity",
        "counters", "read_closed", "events",
    )

    def __init__(
        self,
        client_id: int,
        sock: socket.socket,
        now: float,
        counters: Dict[str, Any],
    ) -> None:
        self.client_id = client_id
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.last_activity = now
        self.counters = counters
        #: True once this side will read no more frames (drain mode);
        #: the connection closes as soon as ``outbuf`` flushes.
        self.read_closed = False
        self.events = selectors.EVENT_READ


class VerdictService:
    """The daemon behind ``repro serve``: one writable store, many
    socket clients, one thread.

    A single-threaded ``selectors`` event loop owns every socket:
    non-blocking accept/read/write, per-connection frame buffers, and
    pipelined dispatch -- every complete frame in a connection's read
    buffer is answered in order before the loop moves on, so clients
    may stream batches back-to-back without waiting.  Store batches
    still pass through the store's own lock; the loop simply replaced
    the thread-per-client topology (and its scheduling/leak failure
    modes) without changing the concurrency discipline.

    In front of SQLite sits an in-memory hot LRU
    (:data:`DEFAULT_HOT_LRU_SIZE` canonical rows, ``--hot-lru-size``):
    read-mostly traffic is served without touching disk, counted as
    ``repro.service.hot_lru.*`` in the metrics registry.  Connections
    are accounted per client *and* per tenant (the handshake ping may
    carry ``tenant``); ``--quota`` meters each tenant's data-plane
    requests and refuses the excess with a permanent error.
    ``--max-clients`` bounds concurrent connections (over-cap connects
    are hung up on: transient to a retrying client).

    Lifecycle: :meth:`start` claims the socket (a *stale* socket file
    left by a dead server is reclaimed; a live verdict service or a
    foreign listener is refused) and opens the store;
    :meth:`request_stop` flags shutdown from a signal handler or the
    ``shutdown`` op; :meth:`stop` tears everything down -- loop thread
    joined, store closed (checkpointing the WAL), socket unlinked.
    ``shutdown {"drain": true}`` instead drains first: the listener
    closes, batches already received are finished and flushed, the WAL
    is checkpointed, and only then does the loop exit -- the
    rolling-restart procedure in docs/OPERATIONS.md.
    ``with VerdictService(...) as service:`` wraps the pair.
    """

    def __init__(
        self,
        store_path: Union[str, Path],
        socket_path: Union[str, Path, None] = None,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT_SECONDS,
        checkpoint_interval: Optional[float] = (
            DEFAULT_CHECKPOINT_INTERVAL_SECONDS
        ),
        hot_lru_size: int = DEFAULT_HOT_LRU_SIZE,
        max_clients: Optional[int] = DEFAULT_MAX_CLIENTS,
        quota: Optional[int] = None,
    ) -> None:
        self.store_path = Path(store_path)
        self.socket_path = (
            Path(socket_path)
            if socket_path is not None
            else self.store_path.with_name(self.store_path.name + ".sock")
        )
        self.timeout = timeout
        #: Per-connection idle budget; ``None``/``0`` restores the
        #: (leaky) keep-forever behaviour.
        self.idle_timeout = idle_timeout or None
        #: Background WAL-checkpoint period; ``None``/``0`` disables
        #: the timer (graceful shutdown still checkpoints).
        self.checkpoint_interval = checkpoint_interval or None
        #: Concurrent-connection cap; ``None``/``0`` removes it.
        self.max_clients = max_clients or None
        #: Per-tenant cap on lifetime data-plane requests;
        #: ``None``/``0`` disables metering.
        self.quota = quota or None
        self.store: Optional[FaultDictionaryStore] = None
        self.started = False
        #: Per-instance override of :data:`MAX_CLIENT_LEDGER`.
        self.max_client_ledger = MAX_CLIENT_LEDGER
        self._hot_lru = _HotLru(hot_lru_size)
        self._listener: Optional[socket.socket] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._wake_r: Optional[int] = None
        self._wake_w: Optional[int] = None
        self._connections: Dict[int, _Connection] = {}
        self._clients: Dict[int, Dict[str, Any]] = {}
        self._tenants: Dict[str, Dict[str, int]] = {}
        self._retired = {
            "clients": 0, "requests": 0, "hits": 0, "misses": 0,
            "writes": 0,
        }
        self._client_seq = 0
        self._started_monotonic = 0.0
        self._next_checkpoint = 0.0
        #: ``None`` -> running; ``"hard"`` -> stop as soon as the
        #: shutdown requester's ack flushes; ``"drain"`` -> finish
        #: received batches, flush, checkpoint, then stop.
        self._stopping: Optional[str] = None
        self._stop_requester: Optional[int] = None
        self._draining = False
        self._drain_swept = False
        #: Resilience counters (under the state lock): idle clients
        #: reaped, background checkpoints run, error answers sent,
        #: over-cap connects refused, over-quota requests denied.
        self._counters = {
            "reaped_idle": 0, "checkpoints": 0, "errors": 0,
            "rejected_full": 0, "quota_denied": 0,
        }
        #: Always-live telemetry: a daemon is a long-running service,
        #: so per-request counters and service-time histograms cost
        #: microseconds against socket round trips and buy the
        #: ``metrics`` op its registry snapshot.  Survives
        #: stop()/start() cycles (counters are cumulative over the
        #: object's lifetime, like the resilience counters above).
        self.telemetry = Telemetry()
        self._state_lock = threading.Lock()
        self._stop = threading.Event()
        self._teardown_lock = threading.Lock()
        self._torn_down = False
        self._lock_fd: Optional[int] = None
        self._owns_socket = False
        self._register_collectors()

    def _register_collectors(self) -> None:
        """Expose the daemon's existing counters through the registry.

        Collectors read ``self`` dynamically (not captured objects), so
        they survive stop()/start() cycles where the store instance is
        replaced.  Sampling happens at snapshot time without the state
        lock: the values are plain ints, and a metrics reader tolerates
        being one increment behind.
        """
        # repro-lint: disable-scope=lock-discipline -- collectors sample
        # at snapshot time without the state lock by design (see above);
        # every sampled value is a plain int or len() and may legally be
        # one increment stale
        registry = self.telemetry.registry
        for field in (
            "reaped_idle", "checkpoints", "errors",
            "rejected_full", "quota_denied",
        ):
            registry.collector(
                f"repro.service.{field}",
                lambda field=field: [({}, self._counters[field])],
            )
        registry.collector(
            "repro.service.connections",
            lambda: [({"state": "active"}, len(self._connections))],
            kind="gauge",
        )
        for field in ("hits", "misses", "evictions"):
            registry.collector(
                f"repro.service.hot_lru.{field}",
                lambda field=field: [({}, getattr(self._hot_lru, field))],
            )
        registry.collector(
            "repro.service.hot_lru.entries",
            lambda: [({}, len(self._hot_lru))],
            kind="gauge",
        )
        registry.collector(
            "repro.service.tenant.requests",
            lambda: [
                ({"tenant": name}, record["requests"])
                for name, record in list(self._tenants.items())
            ],
        )
        for field in ("hits", "misses", "writes", "skipped_writes"):
            registry.collector(
                f"repro.store.{field}",
                lambda field=field: (
                    [({"tier": "store"}, getattr(self.store.stats, field))]
                    if self.store is not None else []
                ),
            )

    @property
    def url(self) -> str:
        """The ``repro+unix://`` URL clients should use."""
        return service_url(self.socket_path)

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> "VerdictService":
        """Claim the socket, open the store, begin accepting clients."""
        # repro-lint: disable-scope=lock-discipline -- start() is an
        # admin-thread operation: the verdict-loop thread does not exist
        # until the Thread.start() on the last line, and Thread.start()
        # is the happens-before edge publishing every write made here.
        if self.started:
            raise ServiceError("verdict service already started")
        self._acquire_lock()
        try:
            self._claim_socket()
            # The store open enforces the whole store contract up front
            # (schema refusal, corrupt-file quarantine) so a bad
            # dictionary fails the daemon at startup, not the first
            # client.
            self.store = FaultDictionaryStore(self.store_path)
            # WAL checkpoint timings land in the daemon's registry.
            self.store.telemetry = self.telemetry
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                listener.bind(str(self.socket_path))
                listener.listen(128)
            except OSError as error:
                listener.close()
                self.store.close()
                self.store = None
                raise ServiceError(
                    f"cannot bind verdict service to {self.socket_path}:"
                    f" {error}"
                ) from error
        except BaseException:
            self._release_lock()
            raise
        self._owns_socket = True
        listener.setblocking(False)
        self._listener = listener
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, None)
        # Self-wake pipe: request_stop() (signal handlers included)
        # writes one byte to pull the loop out of select() immediately.
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        os.set_blocking(self._wake_w, False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, _WAKE)
        # A restarted daemon may serve a different store file; the hot
        # LRU starts empty (its lifetime counters survive, like the
        # resilience counters).
        self._hot_lru.clear()
        self._torn_down = False
        self._stop.clear()
        self._stopping = None
        self._stop_requester = None
        self._draining = False
        self._drain_swept = False
        self.started = True
        self._started_monotonic = time.monotonic()
        self._next_checkpoint = (
            self._started_monotonic + self.checkpoint_interval
            if self.checkpoint_interval else 0.0
        )
        self._loop_thread = threading.Thread(
            target=self._serve_loop, name="verdict-loop", daemon=True
        )
        self._loop_thread.start()
        return self

    def _acquire_lock(self) -> None:
        """Take the daemon lock for this socket path, for our lifetime.

        An flock on a ``<socket>.lock`` sidecar serializes daemons
        competing for one socket: probe-then-unlink-then-bind is a
        TOCTOU between two starters (both see "stale", both reclaim,
        one ends up serving an unlinked inode), and a draining daemon
        must not unlink a replacement's freshly bound socket.  The
        lock is held until :meth:`stop` and the file is deliberately
        never unlinked -- removing flocked lock files reintroduces the
        race the lock exists to close.
        """
        lock_path = self.socket_path.with_name(
            self.socket_path.name + ".lock"
        )
        fd = os.open(str(lock_path), os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as error:
            os.close(fd)
            raise ServiceError(
                f"a verdict service already owns {self.socket_path}"
                f" (lock {lock_path} is held): {error}"
            ) from error
        self._lock_fd = fd

    def _release_lock(self) -> None:
        fd, self._lock_fd = self._lock_fd, None
        if fd is not None:
            os.close(fd)  # closing drops the flock

    def _claim_socket(self) -> None:
        """Reclaim a stale socket; refuse live or foreign occupants."""
        path = self.socket_path
        try:
            mode = os.lstat(path).st_mode
        except FileNotFoundError:
            return
        if not stat.S_ISSOCK(mode):
            raise ServiceError(
                f"socket path {path} exists and is not a socket;"
                " refusing to replace it"
            )
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(min(self.timeout, 5.0))
        try:
            probe.connect(str(path))
        except OSError:
            # Nobody listening: the socket file outlived its server.
            probe.close()
            path.unlink()
            return
        try:
            _send_frame(probe, {"op": "ping"})
            hello = _recv_frame(probe)
        except (OSError, ServiceError):
            hello = None
        finally:
            probe.close()
        if hello is not None and hello.get("service") == SERVICE_MAGIC:
            raise ServiceError(
                f"a verdict service (pid {hello.get('pid')}, store"
                f" {hello.get('store')}) is already serving on {path}"
            )
        raise ServiceError(
            f"{path} is busy with a foreign (non-verdict-service)"
            " listener; refusing to replace it"
        )

    def request_stop(self) -> None:
        """Flag shutdown without tearing down (signal-handler safe)."""
        self._stop.set()
        # Single racy read into a local: writing to a torn-down wake fd
        # raises OSError, which is caught right below.
        # repro-lint: disable=lock-discipline -- racy read is tolerated
        wake = self._wake_w
        if wake is not None:
            try:
                os.write(wake, b"\0")
            except OSError:  # pragma: no cover - loop already gone
                pass

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until shutdown is requested (signal or shutdown op)."""
        return self._stop.wait(timeout)

    def stop(self) -> None:
        """Tear down: join the loop, checkpoint the store, unlink.

        Idempotent; a concurrent second caller blocks until the first
        teardown finishes, so "stopped" always means "WAL on disk".
        The loop thread closes every connection and the listener on its
        way out; this owner-side half closes the store (checkpointing
        the WAL), unlinks the socket and releases the daemon lock.
        """
        with self._teardown_lock:
            if self._torn_down:
                return
            self._torn_down = True
            self.request_stop()
            current = threading.current_thread()
            thread, self._loop_thread = self._loop_thread, None
            if thread is not None and thread is not current:
                thread.join(timeout=10)
            if self.store is not None:
                self.store.close()  # checkpoints the WAL
                self.store = None
            if self._owns_socket:
                # Only unlink a socket this daemon bound (never the
                # one a refused start() probed), and only while still
                # holding the lock -- no replacement can have bound it.
                self._owns_socket = False
                try:
                    self.socket_path.unlink()
                except OSError:
                    pass
            self._release_lock()
            wake_w, self._wake_w = self._wake_w, None
            if wake_w is not None:
                try:
                    os.close(wake_w)
                except OSError:  # pragma: no cover - already closed
                    pass
            self.started = False

    def __enter__(self) -> "VerdictService":
        # Admin-thread flag read: start/stop are owner operations and
        # are never called concurrently.
        # repro-lint: disable=lock-discipline -- owner-thread flag read
        if not self.started:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- the event loop ---------------------------------------------------------

    def _serve_loop(self) -> None:
        """The daemon: one selectors loop owning every socket."""
        try:
            while not self._stop.is_set():
                try:
                    events = self._selector.select(self._loop_timeout())
                except OSError:  # pragma: no cover - fd torn down under us
                    break
                now = time.monotonic()
                for key, mask in events:
                    data = key.data
                    try:
                        if data is None:
                            self._on_accept(now)
                        elif data is _WAKE:
                            try:
                                os.read(self._wake_r, 4096)
                            except OSError:  # pragma: no cover
                                pass
                        else:
                            conn = data
                            if mask & selectors.EVENT_WRITE:
                                self._flush(conn, now)
                            if (mask & selectors.EVENT_READ
                                    and conn.client_id in self._connections
                                    and not conn.read_closed):
                                self._on_readable(conn, now)
                    except Exception:  # noqa: BLE001 - loop must survive
                        # Loop-plumbing failure on one fd (dispatch
                        # errors are already answered in-band): drop
                        # the connection, count it, keep serving.
                        with self._state_lock:
                            self._counters["errors"] += 1
                        if isinstance(data, _Connection):
                            self._close_connection(data)
                now = time.monotonic()
                self._maybe_checkpoint(now)
                self._reap_idle(now)
                self._check_stop_conditions(now)
        finally:
            self._teardown_loop()

    def _loop_timeout(self) -> float:
        if self._stopping is not None:
            return 0.02
        timeout = 0.5
        if self.checkpoint_interval:
            timeout = min(
                timeout,
                max(0.01, self._next_checkpoint - time.monotonic()),
            )
        if self.idle_timeout:
            timeout = min(timeout, max(0.02, self.idle_timeout / 4.0))
        return timeout

    def _teardown_loop(self) -> None:
        """Loop-thread half of shutdown: close every fd the loop owns."""
        self._stop.set()
        for conn in list(self._connections.values()):
            self._close_connection(conn)
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        selector, self._selector = self._selector, None
        if selector is not None:
            try:
                selector.close()
            except OSError:  # pragma: no cover - already closed
                pass
        wake_r, self._wake_r = self._wake_r, None
        if wake_r is not None:
            try:
                os.close(wake_r)
            except OSError:  # pragma: no cover - already closed
                pass

    # -- accept / read / write --------------------------------------------------

    def _on_accept(self, now: float) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            if self._stop.is_set() or self._draining:
                sock.close()
                continue
            if (self.max_clients
                    and len(self._connections) >= self.max_clients):
                # Hang up before the handshake: the retrying client
                # sees a transient EOF and backs off; a briefly-full
                # daemon clears on its own.
                with self._state_lock:
                    self._counters["rejected_full"] += 1
                self.telemetry.counter(
                    "repro.service.rejected", reason="max_clients"
                ).inc()
                sock.close()
                continue
            sock.setblocking(False)
            with self._state_lock:
                self._client_seq += 1
                client_id = self._client_seq
                counters = {
                    "connected": True,
                    "tenant": DEFAULT_TENANT,
                    "requests": 0,
                    "hits": 0,
                    "misses": 0,
                    "writes": 0,
                }
                self._clients[client_id] = counters
                conn = _Connection(client_id, sock, now, counters)
                self._connections[client_id] = conn
            try:
                self._selector.register(sock, selectors.EVENT_READ, conn)
            except (KeyError, ValueError, OSError):  # pragma: no cover
                self._close_connection(conn)

    def _fill_inbuf(self, conn: _Connection) -> str:
        """Pull everything the OS has buffered for this connection.

        Returns ``"open"`` (more may come), ``"eof"`` (peer finished
        writing) or ``"error"`` (dead socket).
        """
        try:
            while True:
                chunk = conn.sock.recv(1 << 20)
                if not chunk:
                    return "eof"
                conn.inbuf += chunk
                if len(chunk) < (1 << 20):
                    return "open"
        except (BlockingIOError, InterruptedError):
            return "open"
        except OSError:
            return "error"

    def _on_readable(self, conn: _Connection, now: float) -> None:
        state = self._fill_inbuf(conn)
        if state == "error":
            self._close_connection(conn)
            return
        conn.last_activity = now
        if conn.inbuf and not self._process_inbuf(conn):
            # Framing garbage / non-protocol talker: drop it.  One bad
            # client never takes the daemon down.
            self._close_connection(conn)
            return
        if conn.client_id not in self._connections:
            return
        self._flush(conn, now)
        if conn.client_id not in self._connections:
            return
        if state == "eof":
            # Clean disconnect; anything still unflushed has no reader.
            self._close_connection(conn)

    def _process_inbuf(self, conn: _Connection) -> bool:
        """Dispatch every complete frame in the read buffer, in order.

        This is where pipelining happens: a client that wrote N frames
        back-to-back gets N responses appended to its write buffer in
        the same order, with no round-trip gaps.  Returns False on
        framing/JSON garbage (caller closes the connection).
        """
        buf = conn.inbuf
        pos = 0
        size = len(buf)
        while size - pos >= _HEADER.size:
            (length,) = _HEADER.unpack_from(buf, pos)
            if length > MAX_FRAME_BYTES:
                return False
            start = pos + _HEADER.size
            if size - start < length:
                break
            body = bytes(buf[start:start + length])
            pos = start + length
            try:
                request = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                return False
            if not isinstance(request, dict):
                return False
            self._handle_request(conn, request)
            if self._stopping == "hard":
                # The ack is the last frame this daemon answers.
                break
        del buf[:pos]
        return True

    def _flush(self, conn: _Connection, now: float) -> None:
        if conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
                if sent:
                    del conn.outbuf[:sent]
                    conn.last_activity = now
            except (BlockingIOError, InterruptedError):
                pass
            except OSError:
                self._close_connection(conn)
                return
        if conn.read_closed and not conn.outbuf:
            self._close_connection(conn)
            return
        self._sync_events(conn)

    def _sync_events(self, conn: _Connection) -> None:
        wanted = 0
        if not conn.read_closed:
            wanted |= selectors.EVENT_READ
        if conn.outbuf:
            wanted |= selectors.EVENT_WRITE
        if wanted == 0:
            self._close_connection(conn)
            return
        if wanted != conn.events:
            try:
                self._selector.modify(conn.sock, wanted, conn)
            except (KeyError, ValueError, OSError):  # pragma: no cover
                self._close_connection(conn)
                return
            conn.events = wanted

    def _close_connection(self, conn: _Connection) -> None:
        if self._connections.get(conn.client_id) is not conn:
            return
        if self._selector is not None:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
        with self._state_lock:
            self._connections.pop(conn.client_id, None)
            conn.counters["connected"] = False
            self._retire_overflow()

    # -- request handling -------------------------------------------------------

    def _handle_request(
        self, conn: _Connection, request: Dict[str, Any]
    ) -> None:
        """Account, meter, dispatch and answer one frame."""
        counters = conn.counters
        op = str(request.get("op"))
        started = time.monotonic()
        response: Optional[Dict[str, Any]] = None
        # The handshake ping may (re)name this connection's tenant;
        # the namespace is pure accounting -- verdicts are
        # content-addressed and shared across tenants by design.
        tenant_field = request.get("tenant")
        if request.get("op") == "ping" and tenant_field is not None:
            if isinstance(tenant_field, str) and tenant_field:
                counters["tenant"] = tenant_field
            else:
                response = {
                    "ok": False,
                    "error": (
                        f"tenant must be a non-empty string,"
                        f" got {tenant_field!r}"
                    ),
                }
        tenant = counters["tenant"]
        with self._state_lock:
            counters["requests"] += 1
            record = self._tenants.setdefault(
                tenant, {"requests": 0, "metered": 0, "denied": 0}
            )
            record["requests"] += 1
            if (response is None and self.quota
                    and op not in QUOTA_EXEMPT_OPS):
                record["metered"] += 1
                if record["metered"] > self.quota:
                    record["denied"] += 1
                    self._counters["quota_denied"] += 1
                    response = {
                        "ok": False,
                        "error": (
                            f"tenant {tenant!r} exceeded its request"
                            f" quota ({self.quota} data-plane"
                            " requests); raise `repro serve --quota`"
                            " or split the workload across tenants"
                        ),
                    }
        if response is None:
            try:
                response = self._dispatch(request, counters)
            except StoreError as error:
                response = {"ok": False, "error": str(error)}
            except Exception as error:  # noqa: BLE001 - protocol boundary
                response = {
                    "ok": False,
                    "error": f"{type(error).__name__}: {error}",
                }
        elapsed = time.monotonic() - started
        # One state-lock scope for the error counter and the request
        # instruments, so a concurrent metrics/health read never sees
        # a timed request without its error accounted (registry locks
        # are leaves under it).
        with self._state_lock:
            if not response.get("ok"):
                self._counters["errors"] += 1
            self.telemetry.counter(
                "repro.service.requests", op=op
            ).inc()
            self.telemetry.histogram(
                "repro.service.request.seconds", op=op
            ).observe(elapsed)
        conn.outbuf += _encode_frame(response)
        if op == "shutdown" and response.get("ok"):
            # Ack first (the frame is buffered; the loop flushes it
            # before stopping), then flag: the owner of wait()/stop()
            # does the teardown.
            if request.get("drain"):
                self._begin_drain()
            else:
                self._stopping = "hard"
                self._stop_requester = conn.client_id

    def _dispatch(
        self, request: Dict[str, Any], counters: Dict[str, Any]
    ) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {
                "ok": True,
                "service": SERVICE_MAGIC,
                "protocol": PROTOCOL_VERSION,
                "pid": os.getpid(),
                "store": str(self.store_path),
                "schema_version": SCHEMA_VERSION,
                "tenant": counters.get("tenant", DEFAULT_TENANT),
            }
        if op == "get_many":
            keys = [_key_from_wire(row) for row in request.get("keys", ())]
            # Hot tier first: a hit is a dict lookup away from the
            # response row, no SQLite, no decode/encode.
            lru = self._hot_lru
            found_rows: List[List[Any]] = []
            missing: List["SimKey"] = []
            for key in keys:
                encoded = lru.get(key)
                if encoded is None:
                    missing.append(key)
                else:
                    found_rows.append(_wire_key(key) + [encoded])
            # Store call and ledger update are one atomic step under
            # the state lock, so a concurrent stats op can never see
            # store counters ahead of the per-client accounting (the
            # store's own lock already serializes the batches, so this
            # costs no real concurrency).
            with self._state_lock:
                found = self.store.get_many(missing) if missing else {}
                counters["hits"] += len(found_rows) + len(found)
                counters["misses"] += (
                    len(keys) - len(found_rows) - len(found)
                )
            for key, value in found.items():
                encoded = encode_verdict(value)
                lru.put(key, encoded)
                found_rows.append(_wire_key(key) + [encoded])
            return {"ok": True, "found": found_rows}
        if op == "put_many":
            pairs = []
            for row in request.get("rows", ()):
                if not isinstance(row, (list, tuple)) or len(row) != 5:
                    raise ServiceError(f"malformed verdict row {row!r}")
                pairs.append((_key_from_wire(row[:4]),
                              decode_verdict(row[4])))
            with self._state_lock:
                self.store.put_many(pairs)
                counters["writes"] += len(pairs)
            # Write-through into the hot tier, re-encoded canonically
            # so LRU hits stay byte-identical to store reads even for
            # a client that sent a non-canonical (but decodable) row.
            lru = self._hot_lru
            for key, value in pairs:
                lru.put(key, encode_verdict(value))
            return {"ok": True, "written": len(pairs)}
        if op == "stats":
            return {"ok": True, **self.snapshot_stats()}
        if op == "health":
            return {"ok": True, **self.health_snapshot()}
        if op == "merge":
            source = request.get("source")
            if not isinstance(source, str) or not source:
                raise ServiceError(
                    f"merge needs a source store path, got {source!r}"
                )
            # merge_from writes rows behind StoreStats' back by design
            # (it is bulk recovery, not cache traffic), so the ledger
            # invariant "per-client + retired == store writes" is
            # untouched: neither side of it moves.
            with self._state_lock:
                merged = self.store.merge_from(source)
            # The merge may have changed rows the hot tier holds.
            self._hot_lru.clear()
            return {"ok": True, "merged": merged}
        if op == "compact":
            # Store swaps happen only in start()/teardown, which
            # bracket the loop's lifetime and cannot race a dispatch.
            # repro-lint: disable=lock-discipline -- loop-thread read
            compacted = self.store.compact(
                max_rows=request.get("max_rows"),
                max_age=request.get("max_age"),
                now=request.get("now"),
                vacuum=request.get("vacuum", True),
            )
            # Compaction pruned rows; drop the hot tier rather than
            # serve entries the store no longer holds (stale verdicts
            # are still *correct* -- verdicts are immutable -- but a
            # pruned-then-hit row would make LRU and store disagree on
            # population).
            self._hot_lru.clear()
            return {"ok": True, "compacted": compacted}
        if op == "metrics":
            # Full registry snapshot: request counters, service-time
            # histograms, store/daemon/hot-LRU collector samples,
            # checkpoint timings -- the machine-readable superset of
            # health/stats.
            return {
                "ok": True,
                "service": SERVICE_MAGIC,
                "protocol": PROTOCOL_VERSION,
                "metrics": self.telemetry.snapshot(),
            }
        if op == "shutdown":
            return {
                "ok": True,
                "stopping": True,
                "drain": bool(request.get("drain")),
            }
        return {"ok": False, "error": f"unknown protocol op {op!r}"}

    # -- timers, drain, teardown ------------------------------------------------

    def _maybe_checkpoint(self, now: float) -> None:
        if not self.checkpoint_interval or self._stopping is not None:
            return
        if now < self._next_checkpoint:
            return
        self._next_checkpoint = now + self.checkpoint_interval
        # State lock -> store lock is the same acquisition order as
        # every dispatch path, so the timer can never deadlock a batch.
        with self._state_lock:
            store = self.store
            if store is None:  # pragma: no cover - stop() raced us
                return
            if store.checkpoint():
                self._counters["checkpoints"] += 1

    def _reap_idle(self, now: float) -> None:
        if not self.idle_timeout or self._stopping is not None:
            return
        for conn in list(self._connections.values()):
            if now - conn.last_activity >= self.idle_timeout:
                # Idle past the budget.  Retrying clients reconnect
                # transparently on their next request.
                with self._state_lock:
                    self._counters["reaped_idle"] += 1
                self._close_connection(conn)

    def _begin_drain(self) -> None:
        """Enter drain mode: refuse new connections immediately.

        The loop's stop check finishes the drain: one final sweep
        pulls every batch already received (OS-buffered included) into
        the frame buffers, answers them, flushes every connection,
        checkpoints the WAL and only then stops.
        """
        if self._draining:
            return
        self._draining = True
        self._stopping = "drain"
        listener, self._listener = self._listener, None
        if listener is not None:
            if self._selector is not None:
                try:
                    self._selector.unregister(listener)
                except (KeyError, ValueError):  # pragma: no cover
                    pass
            try:
                listener.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _check_stop_conditions(self, now: float) -> None:
        if self._stopping == "hard":
            conn = self._connections.get(self._stop_requester)
            if conn is None or not conn.outbuf:
                self._stop.set()
            return
        if self._stopping == "drain":
            if not self._drain_swept:
                # One final read sweep per connection: whatever the OS
                # had buffered when the drain landed is an in-flight
                # batch and gets answered; afterwards nothing more is
                # read.  (This runs at the loop's top level, never
                # inside a connection's own processing pass.)
                self._drain_swept = True
                for conn in list(self._connections.values()):
                    if conn.read_closed:
                        continue
                    state = self._fill_inbuf(conn)
                    if state == "error" or (
                        conn.inbuf and not self._process_inbuf(conn)
                    ):
                        self._close_connection(conn)
                        continue
                    conn.read_closed = True
                    self._flush(conn, now)
            if all(
                not conn.outbuf
                for conn in self._connections.values()
            ):
                for conn in list(self._connections.values()):
                    self._close_connection(conn)
                with self._state_lock:
                    store = self.store
                    if store is not None and store.checkpoint():
                        self._counters["checkpoints"] += 1
                self._stop.set()

    def _retire_overflow(self) -> None:
        """Fold the oldest disconnected clients beyond the ledger cap
        into the ``retired`` aggregate.  Called under the state lock.
        Tenant attribution is dropped at retirement (the per-tenant
        aggregates keep their own lifetime totals)."""
        disconnected = [
            client_id
            for client_id, counters in self._clients.items()
            if not counters["connected"]
        ]
        for client_id in disconnected[:max(
            0, len(disconnected) - self.max_client_ledger
        )]:
            counters = self._clients.pop(client_id)
            self._retired["clients"] += 1
            for field in ("requests", "hits", "misses", "writes"):
                self._retired[field] += counters[field]

    # -- snapshots --------------------------------------------------------------

    def health_snapshot(self) -> Dict[str, Any]:
        """The ``health`` op's payload: liveness plus row population.

        No per-client dump (that stays in ``stats``), but ``rows``
        carries :meth:`FaultDictionaryStore.row_stats` totals so one
        ``repro store ping --json`` round trip can alert on unexpected
        store shrinkage, ``hot_lru`` reports the in-memory tier's
        occupancy and hit counters, and ``service_time`` summarizes
        the per-request service-time histograms (count/seconds per
        op).
        """
        with self._state_lock:
            active = len(self._connections)
            total = len(self._clients) + self._retired["clients"]
            requests = (
                sum(c["requests"] for c in self._clients.values())
                + self._retired["requests"]
            )
            counters = dict(self._counters)
            # Same state-lock -> store-lock order as every dispatch
            # path, so health can never deadlock a batch.
            rows = self.store.row_stats() if self.store is not None else None
        by_op: Dict[str, Dict[str, Any]] = {}
        timed = 0
        seconds = 0.0
        for entry in self.telemetry.registry.series(
            "repro.service.request.seconds"
        ):
            op_name = entry["labels"].get("op", "?")
            by_op[op_name] = {
                "count": entry["count"], "seconds": entry["sum"]
            }
            timed += entry["count"]
            seconds += entry["sum"]
        lru = self._hot_lru
        return {
            "service": SERVICE_MAGIC,
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "store": str(self.store_path),
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "connections": {"active": active, "total": total},
            "requests": requests,
            "counters": counters,
            "rows": rows,
            "hot_lru": {
                "entries": len(lru),
                "max_entries": lru.max_entries,
                "hits": lru.hits,
                "misses": lru.misses,
                "evictions": lru.evictions,
            },
            "service_time": {
                "count": timed, "seconds": seconds, "by_op": by_op
            },
            "idle_timeout": self.idle_timeout,
            "checkpoint_interval": self.checkpoint_interval,
            "max_clients": self.max_clients,
            "quota": self.quota,
            "draining": self._draining,
        }

    def snapshot_stats(self) -> Dict[str, Any]:
        """The ``stats`` op's payload: rows, store counters, clients,
        tenants."""
        # One state-lock scope for the whole snapshot: per-client rows,
        # the retired aggregate and the store counters are mutated
        # together in the dispatch path, so reading them together is
        # what keeps "per-client + retired == store writes" true even
        # mid-batch.
        with self._state_lock:
            per_client = {
                str(client_id): dict(counters)
                for client_id, counters in self._clients.items()
            }
            retired = dict(self._retired)
            counters = dict(self._counters)
            tenants = {
                name: dict(record)
                for name, record in self._tenants.items()
            }
            stats = self.store.stats
            store_stats = {
                "hits": stats.hits,
                "misses": stats.misses,
                "writes": stats.writes,
                "skipped_writes": stats.skipped_writes,
            }
            row_stats = self.store.row_stats()
        return {
            "service": SERVICE_MAGIC,
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "socket": str(self.socket_path),
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "counters": counters,
            "row_stats": row_stats,
            "store_stats": store_stats,
            "clients": {
                "total": len(per_client) + retired["clients"],
                "active": sum(
                    1 for c in per_client.values() if c["connected"]
                ),
                "per_client": per_client,
                "retired": retired,
            },
            "tenants": tenants,
            "quota": self.quota,
        }
