"""The verdict service: a long-lived daemon wrapping one shared store.

PR 3 gave every process a direct SQLite connection to the shared
fault-dictionary file, and PR 4 fanned campaigns out over worker pools
hammering that one WAL.  Both scale as far as a filesystem scales: every
client needs the file (same host or same network mount), every writer
takes the write lock itself, and cross-host fan-out had to fall back to
ship-a-shard-and-merge.  This module is the next step of the ROADMAP's
store lineage: **one** process owns the writable
:class:`~repro.store.store.FaultDictionaryStore`, and everything else
talks to it over a Unix domain socket -- clients stop opening SQLite
files at all.

Protocol
--------
Length-prefixed JSON frames: a 4-byte big-endian byte count, then one
UTF-8 JSON object.  Requests carry an ``"op"`` field::

    {"op": "ping"}
    {"op": "get_many", "keys": [[signature, case, size, domain], ...]}
    {"op": "put_many", "rows": [[signature, case, size, domain, verdict], ...]}
    {"op": "stats"}
    {"op": "health"}
    {"op": "metrics"}
    {"op": "compact", "max_rows": N, "max_age": S, "vacuum": true}
    {"op": "shutdown"}

Responses are JSON objects with ``"ok"``; errors come back as
``{"ok": false, "error": "..."}`` instead of killing the connection.
Verdicts cross the wire in the store's canonical row encoding
(:func:`~repro.store.store.encode_verdict`), so detection booleans and
diagnosis syndromes round-trip byte-identically.  ``ping`` doubles as
the handshake: a verdict service always answers with the
:data:`SERVICE_MAGIC` tag and its protocol generation, so a client (or
a second server racing for the socket) can tell a live service from a
stale socket file or a foreign listener -- foreign sockets are refused,
never unlinked.

Topology
--------
* :class:`VerdictService` -- the server (``repro serve STORE --socket
  SOCK``): threaded, one handler per client, every batch funnelled
  through the store's existing lock, per-client hit/miss/write
  counters, WAL checkpoint on graceful shutdown.
* :class:`ServiceStore` -- the client: the same
  ``get``/``get_many``/``put``/``put_many``/``stats`` surface as
  :class:`~repro.store.store.FaultDictionaryStore`, so
  :class:`~repro.store.tiered.TieredCache` and
  :class:`~repro.kernel.kernel.SimulationKernel` cannot tell the
  difference.  Pass a ``repro+unix:///path/to.sock`` URL anywhere a
  store path is accepted (``--store``, ``GeneratorConfig.store_path``,
  campaign specs) and :func:`~repro.store.store.resolve_store`
  dispatches here.  Connections are lazy and self-healing: transient
  failures (daemon restart, connection reset, timeout, a desynced
  stream after a *successful* handshake) raise
  :class:`ServiceUnavailableError` and are retried with exponential
  backoff under an injectable
  :class:`~repro.store.resilience.RetryPolicy`, while permanent
  errors (protocol mismatch, foreign listener, a refused request)
  fail fast no matter the retry budget.

Resilience (PR 7)
-----------------
The daemon reaps idle clients (``--idle-timeout``: a per-connection
read timeout replaces the forever-blocking read, closing the
connection and retiring its ledger entry; retrying clients reconnect
transparently), checkpoints its WAL on a background timer
(``--checkpoint-interval``) so a SIGKILL loses at most the last
interval's WAL growth, and answers a ``health`` op (uptime, connection
counts, reaped/checkpoint/error counters) next to ``ping`` -- the
``repro store ping`` liveness probe.  A ``merge`` op folds a
server-local store file (in practice a campaign worker's degraded
spill shard) into the served dictionary without a second writer ever
opening it.

``repro campaign --jobs N --store repro+unix://...`` is the designated
cross-host fan-out substrate: N concurrent writers become N socket
clients of one serialized WAL owner, with no shard-and-merge step.

This module depends on :mod:`repro.kernel` (for :class:`SimKey`), which
imports the store package at startup -- import it as
``repro.store.service`` directly, never from ``repro.store``'s
namespace (the same rule as :mod:`repro.store.campaign`).
"""

from __future__ import annotations

import fcntl
import json
import os
import socket
import stat
import struct
import threading
import time
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..kernel.cache import SimKey
from ..telemetry import Telemetry
from .resilience import (
    RetryExhaustedError,
    RetryPolicy,
    TransientStoreError,
)
from .store import (
    SCHEMA_VERSION,
    SERVICE_URL_PREFIX,
    FaultDictionaryStore,
    StoreError,
    StoreStats,
    decode_verdict,
    encode_verdict,
)

#: Generation of the wire protocol.  Bump on incompatible frame or op
#: changes; a client refuses to talk to a server of another generation.
PROTOCOL_VERSION = 1

#: The handshake tag every ping answer carries.  A listener that does
#: not identify with it is a foreign server: refused, never replaced.
SERVICE_MAGIC = "repro-verdict-service"

#: Hard ceiling on one frame's body.  Real batches are a few megabytes
#: at most; a larger announced length means the peer is not speaking
#: this protocol (e.g. an HTTP client hitting the socket).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Socket send/receive timeout for clients and the server's probe of a
#: possibly-stale socket.  Generous: a ``compact`` VACUUM of a huge
#: dictionary is the slowest legitimate request.
DEFAULT_TIMEOUT_SECONDS = 120.0

#: Per-connection idle read timeout on the *server* side.  Generous --
#: a campaign worker legitimately goes quiet for minutes while its
#: backend simulates between store batches -- but finite: one idle (or
#: wedged) client may no longer pin a handler thread forever.  Reaped
#: clients lose only a socket; a retrying :class:`ServiceStore`
#: reconnects transparently on its next request.
DEFAULT_IDLE_TIMEOUT_SECONDS = 900.0

#: Period of the daemon's background WAL checkpoint.  A PASSIVE
#: checkpoint every interval bounds how much committed-but-unfolded
#: WAL a SIGKILL can leave behind (the data is durable either way;
#: this bounds recovery work and WAL file growth).
DEFAULT_CHECKPOINT_INTERVAL_SECONDS = 60.0

#: How many *disconnected* clients keep an individual entry in the
#: per-client ledger.  A long-lived daemon serves an unbounded client
#: stream (every campaign worker is one connection); beyond this cap
#: the oldest retirees are folded into one ``retired`` aggregate so
#: the ledger -- and the ``stats`` payload -- stays bounded while the
#: write-accounting invariant (per-client + retired == store writes)
#: still holds.
MAX_CLIENT_LEDGER = 4096

_HEADER = struct.Struct(">I")


class ServiceError(StoreError):
    """The verdict service (or its socket) cannot serve the request."""


class ServiceUnavailableError(ServiceError, TransientStoreError):
    """Transient service failure: nothing answered, the peer hung up,
    or the connection desynced after a successful handshake.  Worth
    retrying (the :class:`~repro.store.resilience.TransientStoreError`
    marker routes it into :class:`RetryPolicy` backoff and
    :class:`~repro.store.resilience.DegradingStore` demotion); plain
    :class:`ServiceError` stays permanent and fails fast."""


def is_service_url(target: Any) -> bool:
    """True when ``target`` is a ``repro+unix://`` service URL."""
    return isinstance(target, str) and target.startswith(SERVICE_URL_PREFIX)


def service_socket_path(target: Union[str, Path]) -> Path:
    """The socket path behind a service URL (bare paths pass through)."""
    if isinstance(target, Path):
        return target
    if is_service_url(target):
        target = target[len(SERVICE_URL_PREFIX):]
        if not target:
            raise ServiceError(
                f"service URL names no socket path"
                f" (expected {SERVICE_URL_PREFIX}/path/to.sock)"
            )
    return Path(target)


def service_url(socket_path: Union[str, Path]) -> str:
    """The ``repro+unix://`` URL for a socket path."""
    return SERVICE_URL_PREFIX + str(socket_path)


# -- framing ---------------------------------------------------------------------


def _send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or ``None`` on a clean EOF."""
    chunks: List[bytes] = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on EOF, :class:`ServiceError` on garbage."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServiceError(
            f"peer announced a {length}-byte frame (limit"
            f" {MAX_FRAME_BYTES}); it is not speaking the verdict-service"
            " protocol"
        )
    body = _recv_exact(sock, length)
    if body is None:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(
            f"undecodable verdict-service frame: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise ServiceError("verdict-service frames must be JSON objects")
    return payload


# -- wire form of keys and rows --------------------------------------------------


def _wire_key(key: "SimKey") -> List[Any]:
    return [key.signature, key.case, key.size, key.domain]


def _key_from_wire(row: Any) -> "SimKey":
    if not isinstance(row, (list, tuple)) or len(row) != 4:
        raise ServiceError(f"malformed wire key {row!r}")
    signature, case, size, domain = row
    if not (isinstance(signature, str) and isinstance(case, str)
            and isinstance(size, int) and isinstance(domain, str)):
        raise ServiceError(f"malformed wire key {row!r}")
    return SimKey(signature, case, size, domain)


# -- the client ------------------------------------------------------------------


class ServiceStore:
    """A verdict store served over a Unix socket instead of a file.

    Drop-in for :class:`FaultDictionaryStore` wherever the kernel or
    the campaign runner uses one: same lookup/write surface, same
    :class:`StoreStats` counters (this client's view; the server keeps
    its own per-client ledger).  ``readonly=True`` is enforced
    client-side exactly like the file store's readonly mode: puts
    become counted no-ops and ``compact`` is refused.

    >>> client = ServiceStore("repro+unix:///tmp/verdict.sock")  # doctest: +SKIP
    >>> client.get_many(keys)                                    # doctest: +SKIP
    """

    def __init__(
        self,
        target: Union[str, Path],
        readonly: bool = False,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.socket_path = service_socket_path(target)
        self.url = service_url(self.socket_path)
        self.readonly = readonly
        self.timeout = timeout
        #: Transient-failure policy; default rides out a short daemon
        #: restart.  ``RetryPolicy.no_retry()`` restores fail-fast.
        self.retry = retry if retry is not None else RetryPolicy()
        #: How many transient failures this client has retried (each
        #: one cost a backoff sleep and a reconnect).
        self.retries = 0
        self.stats = StoreStats()
        #: The server's last handshake answer (pid, store path, schema).
        self.server: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    # -- connection -------------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(str(self.socket_path))
        except OSError as error:
            sock.close()
            raise ServiceUnavailableError(
                f"no verdict service at {self.socket_path}: {error};"
                " start one with `repro serve STORE --socket SOCK`"
            ) from error
        # Connected.  Transient vs permanent is decided by *how* the
        # handshake fails: a peer that hangs up (EOF, reset, timeout)
        # may be a daemon dying or restarting under us -- transient,
        # retried.  A peer that *answers wrongly* (garbage frames, a
        # foreign magic, another protocol generation) is definitely
        # not our service -- permanent, fail fast, never unlinked.
        try:
            _send_frame(sock, {"op": "ping"})
            hello = _recv_frame(sock)
        except ServiceError as error:
            sock.close()
            raise ServiceError(
                f"{self.socket_path} is not a verdict service: {error}"
            ) from error
        except OSError as error:
            sock.close()
            raise ServiceUnavailableError(
                f"the verdict service at {self.socket_path} did not"
                f" complete the handshake ({error}); it may be"
                " restarting"
            ) from error
        if hello is None:
            sock.close()
            raise ServiceUnavailableError(
                f"the listener on {self.socket_path} hung up during"
                " the handshake; it may be a verdict service going"
                " down (or a foreign socket -- retries will tell)"
            )
        if hello.get("service") != SERVICE_MAGIC:
            sock.close()
            raise ServiceError(
                f"the listener on {self.socket_path} is not a verdict"
                " service (it did not answer the handshake); refusing"
                " to talk to it"
            )
        if hello.get("protocol") != PROTOCOL_VERSION:
            sock.close()
            raise ServiceError(
                f"verdict service on {self.socket_path} speaks protocol"
                f" {hello.get('protocol')}, this client speaks"
                f" {PROTOCOL_VERSION}"
            )
        self.server = hello
        return sock

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def _attempt(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One round trip on (at most) one connection.

        Raises :class:`ServiceUnavailableError` for everything a fresh
        connection could plausibly cure -- the socket died, the server
        hung up mid-request, or the stream desynced *after* a
        successful handshake (the handshake proved the peer speaks the
        protocol, so mid-stream garbage is transport corruption; the
        reconnect's fresh handshake re-verifies the peer and fails
        fast if it really turned foreign).  A well-framed ``ok: false``
        answer is the server refusing the request: permanent.
        """
        if self._sock is None:
            self._sock = self._connect()
        try:
            _send_frame(self._sock, payload)
            response = _recv_frame(self._sock)
        except ServiceError as error:
            # Broken framing: whatever else sits in the stream is
            # unusable (e.g. the body of an oversize frame).  Drop the
            # connection so the retry starts clean instead of reading
            # mid-body bytes as a header forever.
            self._drop_connection()
            raise ServiceUnavailableError(
                f"verdict-service connection to {self.socket_path}"
                f" desynced mid-stream: {error}"
            ) from error
        except OSError as error:
            self._drop_connection()
            raise ServiceUnavailableError(
                f"lost the verdict service at {self.socket_path}:"
                f" {error}"
            ) from error
        if response is None:
            # Server went away mid-request (restart, shutdown, reap).
            self._drop_connection()
            raise ServiceUnavailableError(
                f"verdict service at {self.socket_path} closed the"
                " connection"
            )
        if not response.get("ok"):
            raise ServiceError(
                response.get("error")
                or "verdict service refused the request"
            )
        return response

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request under the retry policy.

        Transient failures (:class:`ServiceUnavailableError`) are
        retried with the policy's backoff -- each retry reconnects and
        re-handshakes -- until the attempt or deadline budget runs
        out; permanent :class:`ServiceError`\\ s propagate on the first
        attempt.  Retrying a write is safe: every ``put_many`` is an
        idempotent batch of canonical upserts, so at-least-once
        delivery cannot corrupt the dictionary.
        """
        def on_retry(
            attempt: int, delay: float, error: BaseException
        ) -> None:
            self.retries += 1

        with self._lock:
            try:
                return self.retry.call(
                    lambda: self._attempt(payload), on_retry=on_retry
                )
            except RetryExhaustedError as error:
                raise ServiceUnavailableError(
                    f"verdict service at {self.socket_path} still"
                    f" unavailable after {error.attempts} attempt(s)"
                    f" over {error.elapsed:.2f}s: {error.last_error}"
                ) from error

    # -- lookups ----------------------------------------------------------------

    def _lookup(self, keys: Sequence["SimKey"]) -> Dict["SimKey", Any]:
        """One ``get_many`` round trip, no client-side stat effects."""
        if not keys:
            return {}
        response = self._request(
            {"op": "get_many", "keys": [_wire_key(key) for key in keys]}
        )
        found: Dict["SimKey", Any] = {}
        for row in response.get("found", ()):
            if not isinstance(row, (list, tuple)) or len(row) != 5:
                raise ServiceError(f"malformed verdict row {row!r}")
            found[_key_from_wire(row[:4])] = decode_verdict(row[4])
        return found

    def get(self, key: "SimKey", default: Any = None) -> Any:
        found = self._lookup([key])
        if key in found:
            self.stats.hits += 1
            return found[key]
        self.stats.misses += 1
        return default

    def get_many(self, keys: Iterable["SimKey"]) -> Dict["SimKey", Any]:
        keys = list(keys)
        found = self._lookup(keys)
        self.stats.hits += len(found)
        self.stats.misses += len(keys) - len(found)
        return found

    def __contains__(self, key: "SimKey") -> bool:
        return key in self._lookup([key])

    def __len__(self) -> int:
        return self.row_stats()["rows"]

    # -- writes -----------------------------------------------------------------

    def put(self, key: "SimKey", value: Any) -> None:
        self.put_many([(key, value)])

    def put_many(self, pairs: Sequence[Tuple["SimKey", Any]]) -> None:
        pairs = list(pairs)
        if not pairs:
            return
        if self.readonly:
            self.stats.skipped_writes += len(pairs)
            return
        rows = [
            _wire_key(key) + [encode_verdict(value)] for key, value in pairs
        ]
        self._request({"op": "put_many", "rows": rows})
        self.stats.writes += len(rows)

    # -- service surface --------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Handshake round trip; returns the server's identity frame."""
        response = self._request({"op": "ping"})
        self.server = response
        return response

    def server_stats(self) -> Dict[str, Any]:
        """The server's full ledger: rows, store counters, per-client
        hit/miss/write counters (``repro store stats --socket``)."""
        response = self._request({"op": "stats"})
        return {k: v for k, v in response.items() if k != "ok"}

    def health(self) -> Dict[str, Any]:
        """The daemon's liveness report: uptime, connection counts,
        the resilience counters (idle reaps, checkpoints, errors),
        row population and service-time summary."""
        response = self._request({"op": "health"})
        return {k: v for k, v in response.items() if k != "ok"}

    def metrics(self) -> Dict[str, Any]:
        """The daemon's full metrics-registry snapshot (op ``metrics``):
        per-op request counters and service-time histograms, store
        counters, WAL checkpoint timings, connection gauge."""
        return self._request({"op": "metrics"})["metrics"]

    def merge_from(
        self, source: Union[str, Path]
    ) -> Dict[str, int]:
        """Ask the daemon to fold a *server-local* store file into the
        dictionary it owns (``{"source_rows", "inserted", "merged"}``).

        This is how degraded campaign spill shards rejoin the main
        dictionary without a second process ever writing the served
        file.  ``source`` is resolved by the daemon; Unix-socket
        services are same-host by construction, so worker spill paths
        are visible to it.
        """
        if self.readonly:
            raise StoreError(
                "cannot merge through a readonly service client"
            )
        response = self._request(
            {"op": "merge", "source": str(source)}
        )
        return response["merged"]

    def resilience(self) -> Dict[str, Any]:
        """Retry/degradation counters in the shape the campaign
        manifest records per job (a plain client never degrades)."""
        return {
            "attempts": self.retries,
            "degraded": False,
            "spill": None,
        }

    def row_stats(self) -> Dict[str, Any]:
        """Row population of the served store (file-store parity)."""
        return self.server_stats()["row_stats"]

    def compact(
        self,
        max_rows: Optional[int] = None,
        max_age: Optional[float] = None,
        now: Optional[float] = None,
        vacuum: bool = True,
    ) -> Dict[str, Any]:
        """Ask the daemon to compact the store it owns."""
        if self.readonly:
            raise StoreError(
                "cannot compact through a readonly service client"
            )
        response = self._request({
            "op": "compact",
            "max_rows": max_rows,
            "max_age": max_age,
            "now": now,
            "vacuum": vacuum,
        })
        return response["compacted"]

    def shutdown_server(self) -> Dict[str, Any]:
        """Ask the daemon to stop gracefully (it checkpoints its WAL)."""
        return self._request({"op": "shutdown"})

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Drop this client's connection (the server keeps running)."""
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "ServiceStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def describe(self) -> str:
        mode = " readonly" if self.readonly else ""
        return f"service [{self.socket_path.name}{mode}]: {self.stats}"


# -- the server ------------------------------------------------------------------


class VerdictService:
    """The daemon behind ``repro serve``: one writable store, many
    socket clients.

    Threaded: an accept loop hands each client to its own handler
    thread, and every batch lands on the store through the store's own
    lock -- exactly the concurrency discipline a multi-threaded direct
    opener would get, minus the per-client SQLite connections.

    Lifecycle: :meth:`start` claims the socket (a *stale* socket file
    left by a dead server is reclaimed; a live verdict service or a
    foreign listener is refused) and opens the store;
    :meth:`request_stop` flags shutdown from a signal handler or the
    ``shutdown`` op; :meth:`stop` tears everything down -- handler
    threads joined, store closed (checkpointing the WAL), socket
    unlinked.  ``with VerdictService(...) as service:`` wraps the pair.
    """

    def __init__(
        self,
        store_path: Union[str, Path],
        socket_path: Union[str, Path, None] = None,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT_SECONDS,
        checkpoint_interval: Optional[float] = (
            DEFAULT_CHECKPOINT_INTERVAL_SECONDS
        ),
    ) -> None:
        self.store_path = Path(store_path)
        self.socket_path = (
            Path(socket_path)
            if socket_path is not None
            else self.store_path.with_name(self.store_path.name + ".sock")
        )
        self.timeout = timeout
        #: Per-connection idle read timeout; ``None``/``0`` restores
        #: the (leaky) block-forever behaviour.
        self.idle_timeout = idle_timeout or None
        #: Background WAL-checkpoint period; ``None``/``0`` disables
        #: the timer (graceful shutdown still checkpoints).
        self.checkpoint_interval = checkpoint_interval or None
        self.store: Optional[FaultDictionaryStore] = None
        self.started = False
        #: Per-instance override of :data:`MAX_CLIENT_LEDGER`.
        self.max_client_ledger = MAX_CLIENT_LEDGER
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._checkpoint_thread: Optional[threading.Thread] = None
        self._handlers: Dict[int, threading.Thread] = {}
        self._connections: Dict[int, socket.socket] = {}
        self._clients: Dict[int, Dict[str, Any]] = {}
        self._retired = {
            "clients": 0, "requests": 0, "hits": 0, "misses": 0,
            "writes": 0,
        }
        self._client_seq = 0
        self._started_monotonic = 0.0
        #: Resilience counters (under the state lock): idle clients
        #: reaped, background checkpoints run, error answers sent.
        self._counters = {"reaped_idle": 0, "checkpoints": 0, "errors": 0}
        #: Always-live telemetry: a daemon is a long-running service,
        #: so per-request counters and service-time histograms cost
        #: microseconds against socket round trips and buy the
        #: ``metrics`` op its registry snapshot.  Survives
        #: stop()/start() cycles (counters are cumulative over the
        #: object's lifetime, like the resilience counters above).
        self.telemetry = Telemetry()
        self._state_lock = threading.Lock()
        self._stop = threading.Event()
        self._teardown_lock = threading.Lock()
        self._torn_down = False
        self._lock_fd: Optional[int] = None
        self._owns_socket = False
        self._register_collectors()

    def _register_collectors(self) -> None:
        """Expose the daemon's existing counters through the registry.

        Collectors read ``self`` dynamically (not captured objects), so
        they survive stop()/start() cycles where the store instance is
        replaced.  Sampling happens at snapshot time without the state
        lock: the values are plain ints, and a metrics reader tolerates
        being one increment behind.
        """
        registry = self.telemetry.registry
        for field in ("reaped_idle", "checkpoints", "errors"):
            registry.collector(
                f"repro.service.{field}",
                lambda field=field: [({}, self._counters[field])],
            )
        registry.collector(
            "repro.service.connections",
            lambda: [({"state": "active"}, len(self._connections))],
            kind="gauge",
        )
        for field in ("hits", "misses", "writes", "skipped_writes"):
            registry.collector(
                f"repro.store.{field}",
                lambda field=field: (
                    [({"tier": "store"}, getattr(self.store.stats, field))]
                    if self.store is not None else []
                ),
            )

    @property
    def url(self) -> str:
        """The ``repro+unix://`` URL clients should use."""
        return service_url(self.socket_path)

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> "VerdictService":
        """Claim the socket, open the store, begin accepting clients."""
        if self.started:
            raise ServiceError("verdict service already started")
        self._acquire_lock()
        try:
            self._claim_socket()
            # The store open enforces the whole store contract up front
            # (schema refusal, corrupt-file quarantine) so a bad
            # dictionary fails the daemon at startup, not the first
            # client.
            self.store = FaultDictionaryStore(self.store_path)
            # WAL checkpoint timings land in the daemon's registry.
            self.store.telemetry = self.telemetry
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                listener.bind(str(self.socket_path))
                listener.listen(128)
            except OSError as error:
                listener.close()
                self.store.close()
                self.store = None
                raise ServiceError(
                    f"cannot bind verdict service to {self.socket_path}:"
                    f" {error}"
                ) from error
        except BaseException:
            self._release_lock()
            raise
        self._owns_socket = True
        # A short accept timeout keeps the loop responsive to the stop
        # flag even if closing the listener ever fails to wake it.
        listener.settimeout(0.5)
        self._listener = listener
        self._torn_down = False
        self._stop.clear()
        self.started = True
        self._started_monotonic = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="verdict-accept", daemon=True
        )
        self._accept_thread.start()
        if self.checkpoint_interval:
            self._checkpoint_thread = threading.Thread(
                target=self._checkpoint_loop,
                name="verdict-checkpoint",
                daemon=True,
            )
            self._checkpoint_thread.start()
        return self

    def _acquire_lock(self) -> None:
        """Take the daemon lock for this socket path, for our lifetime.

        An flock on a ``<socket>.lock`` sidecar serializes daemons
        competing for one socket: probe-then-unlink-then-bind is a
        TOCTOU between two starters (both see "stale", both reclaim,
        one ends up serving an unlinked inode), and a draining daemon
        must not unlink a replacement's freshly bound socket.  The
        lock is held until :meth:`stop` and the file is deliberately
        never unlinked -- removing flocked lock files reintroduces the
        race the lock exists to close.
        """
        lock_path = self.socket_path.with_name(
            self.socket_path.name + ".lock"
        )
        fd = os.open(str(lock_path), os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as error:
            os.close(fd)
            raise ServiceError(
                f"a verdict service already owns {self.socket_path}"
                f" (lock {lock_path} is held): {error}"
            ) from error
        self._lock_fd = fd

    def _release_lock(self) -> None:
        fd, self._lock_fd = self._lock_fd, None
        if fd is not None:
            os.close(fd)  # closing drops the flock

    def _claim_socket(self) -> None:
        """Reclaim a stale socket; refuse live or foreign occupants."""
        path = self.socket_path
        try:
            mode = os.lstat(path).st_mode
        except FileNotFoundError:
            return
        if not stat.S_ISSOCK(mode):
            raise ServiceError(
                f"socket path {path} exists and is not a socket;"
                " refusing to replace it"
            )
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(min(self.timeout, 5.0))
        try:
            probe.connect(str(path))
        except OSError:
            # Nobody listening: the socket file outlived its server.
            probe.close()
            path.unlink()
            return
        try:
            _send_frame(probe, {"op": "ping"})
            hello = _recv_frame(probe)
        except (OSError, ServiceError):
            hello = None
        finally:
            probe.close()
        if hello is not None and hello.get("service") == SERVICE_MAGIC:
            raise ServiceError(
                f"a verdict service (pid {hello.get('pid')}, store"
                f" {hello.get('store')}) is already serving on {path}"
            )
        raise ServiceError(
            f"{path} is busy with a foreign (non-verdict-service)"
            " listener; refusing to replace it"
        )

    def request_stop(self) -> None:
        """Flag shutdown without tearing down (signal-handler safe)."""
        self._stop.set()
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until shutdown is requested (signal or shutdown op)."""
        return self._stop.wait(timeout)

    def stop(self) -> None:
        """Tear down: close clients, join threads, checkpoint, unlink.

        Idempotent; a concurrent second caller blocks until the first
        teardown finishes, so "stopped" always means "WAL on disk".
        """
        with self._teardown_lock:
            if self._torn_down:
                return
            self._torn_down = True
            self.request_stop()
            with self._state_lock:
                connections = list(self._connections.values())
                handlers = list(self._handlers.values())
            for conn in connections:
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            current = threading.current_thread()
            if self._accept_thread is not None \
                    and self._accept_thread is not current:
                self._accept_thread.join(timeout=10)
            if self._checkpoint_thread is not None \
                    and self._checkpoint_thread is not current:
                self._checkpoint_thread.join(timeout=10)
                self._checkpoint_thread = None
            for thread in handlers:
                if thread is not current:
                    thread.join(timeout=10)
            if self.store is not None:
                self.store.close()  # checkpoints the WAL
                self.store = None
            if self._owns_socket:
                # Only unlink a socket this daemon bound (never the
                # one a refused start() probed), and only while still
                # holding the lock -- no replacement can have bound it.
                self._owns_socket = False
                try:
                    self.socket_path.unlink()
                except OSError:
                    pass
            self._release_lock()
            self.started = False

    def __enter__(self) -> "VerdictService":
        if not self.started:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- serving ----------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by request_stop()/stop()
            with self._state_lock:
                if self._stop.is_set():
                    conn.close()
                    break
                self._client_seq += 1
                client_id = self._client_seq
                self._connections[client_id] = conn
                self._clients[client_id] = {
                    "connected": True,
                    "requests": 0,
                    "hits": 0,
                    "misses": 0,
                    "writes": 0,
                }
                thread = threading.Thread(
                    target=self._serve_client,
                    args=(conn, client_id),
                    name=f"verdict-client-{client_id}",
                    daemon=True,
                )
                self._handlers[client_id] = thread
            thread.start()

    def _checkpoint_loop(self) -> None:
        """Fold the WAL back periodically, until shutdown.

        State lock -> store lock is the same acquisition order as
        every dispatch path, so the timer can never deadlock a batch.
        """
        while not self._stop.wait(self.checkpoint_interval):
            with self._state_lock:
                store = self.store
                if store is None:  # pragma: no cover - stop() raced us
                    break
                if store.checkpoint():
                    self._counters["checkpoints"] += 1

    def _serve_client(self, conn: socket.socket, client_id: int) -> None:
        # Per-client counters are only ever touched by this one handler
        # thread; the stats op snapshots them under the state lock.
        counters = self._clients[client_id]
        # The idle timeout replaces the historical settimeout(None):
        # a client that goes quiet past it is reaped -- connection
        # closed, handler retired, ledger entry folded like any clean
        # disconnect -- instead of pinning this thread forever.
        conn.settimeout(self.idle_timeout)
        try:
            while not self._stop.is_set():
                try:
                    request = _recv_frame(conn)
                except socket.timeout:
                    # Idle past the budget (socket.timeout must be
                    # caught before its OSError parent).  Retrying
                    # clients reconnect transparently next request.
                    with self._state_lock:
                        self._counters["reaped_idle"] += 1
                    break
                except (OSError, ServiceError):
                    # Dead peer or a non-protocol talker: drop it.  One
                    # bad client never takes the daemon down.
                    break
                if request is None:
                    break  # clean disconnect
                counters["requests"] += 1
                op_name = str(request.get("op"))
                stopping = request.get("op") == "shutdown"
                started = time.monotonic()
                try:
                    response = self._dispatch(request, counters)
                except StoreError as error:
                    response = {"ok": False, "error": str(error)}
                except Exception as error:  # noqa: BLE001 - protocol boundary
                    response = {
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}",
                    }
                elapsed = time.monotonic() - started
                # One state-lock scope for the error counter and the
                # request instruments, so a concurrent metrics/health
                # read never sees a timed request without its error
                # accounted (registry locks are leaves under it).
                with self._state_lock:
                    if not response.get("ok"):
                        self._counters["errors"] += 1
                    self.telemetry.counter(
                        "repro.service.requests", op=op_name
                    ).inc()
                    self.telemetry.histogram(
                        "repro.service.request.seconds", op=op_name
                    ).observe(elapsed)
                try:
                    _send_frame(conn, response)
                except OSError:
                    break
                if stopping and response.get("ok"):
                    # Ack first, then flag: the asker gets its answer,
                    # the owner of wait()/stop() does the teardown.
                    self.request_stop()
                    break
        finally:
            counters["connected"] = False
            with self._state_lock:
                self._connections.pop(client_id, None)
                # Dead Thread objects must not accrue on a long-lived
                # daemon; the counters ledger is bounded separately.
                self._handlers.pop(client_id, None)
                self._retire_overflow()
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _retire_overflow(self) -> None:
        """Fold the oldest disconnected clients beyond the ledger cap
        into the ``retired`` aggregate.  Called under the state lock."""
        disconnected = [
            client_id
            for client_id, counters in self._clients.items()
            if not counters["connected"]
        ]
        for client_id in disconnected[:max(
            0, len(disconnected) - self.max_client_ledger
        )]:
            counters = self._clients.pop(client_id)
            self._retired["clients"] += 1
            for field in ("requests", "hits", "misses", "writes"):
                self._retired[field] += counters[field]

    def _dispatch(
        self, request: Dict[str, Any], counters: Dict[str, Any]
    ) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {
                "ok": True,
                "service": SERVICE_MAGIC,
                "protocol": PROTOCOL_VERSION,
                "pid": os.getpid(),
                "store": str(self.store_path),
                "schema_version": SCHEMA_VERSION,
            }
        if op == "get_many":
            keys = [_key_from_wire(row) for row in request.get("keys", ())]
            # Store call and ledger update are one atomic step under
            # the state lock, so a concurrent stats op can never see
            # store counters ahead of the per-client accounting (the
            # store's own lock already serializes the batches, so this
            # costs no real concurrency).
            with self._state_lock:
                found = self.store.get_many(keys)
                counters["hits"] += len(found)
                counters["misses"] += len(keys) - len(found)
            return {
                "ok": True,
                "found": [
                    _wire_key(key) + [encode_verdict(value)]
                    for key, value in found.items()
                ],
            }
        if op == "put_many":
            pairs = []
            for row in request.get("rows", ()):
                if not isinstance(row, (list, tuple)) or len(row) != 5:
                    raise ServiceError(f"malformed verdict row {row!r}")
                pairs.append((_key_from_wire(row[:4]),
                              decode_verdict(row[4])))
            with self._state_lock:
                self.store.put_many(pairs)
                counters["writes"] += len(pairs)
            return {"ok": True, "written": len(pairs)}
        if op == "stats":
            return {"ok": True, **self.snapshot_stats()}
        if op == "health":
            return {"ok": True, **self.health_snapshot()}
        if op == "merge":
            source = request.get("source")
            if not isinstance(source, str) or not source:
                raise ServiceError(
                    f"merge needs a source store path, got {source!r}"
                )
            # merge_from writes rows behind StoreStats' back by design
            # (it is bulk recovery, not cache traffic), so the ledger
            # invariant "per-client + retired == store writes" is
            # untouched: neither side of it moves.
            with self._state_lock:
                merged = self.store.merge_from(source)
            return {"ok": True, "merged": merged}
        if op == "compact":
            return {
                "ok": True,
                "compacted": self.store.compact(
                    max_rows=request.get("max_rows"),
                    max_age=request.get("max_age"),
                    now=request.get("now"),
                    vacuum=request.get("vacuum", True),
                ),
            }
        if op == "metrics":
            # Full registry snapshot: request counters, service-time
            # histograms, store/daemon collector samples, checkpoint
            # timings -- the machine-readable superset of health/stats.
            return {
                "ok": True,
                "service": SERVICE_MAGIC,
                "protocol": PROTOCOL_VERSION,
                "metrics": self.telemetry.snapshot(),
            }
        if op == "shutdown":
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": f"unknown protocol op {op!r}"}

    def health_snapshot(self) -> Dict[str, Any]:
        """The ``health`` op's payload: liveness plus row population.

        No per-client dump (that stays in ``stats``), but ``rows``
        carries :meth:`FaultDictionaryStore.row_stats` totals so one
        ``repro store ping --json`` round trip can alert on unexpected
        store shrinkage, and ``service_time`` summarizes the
        per-request service-time histograms (count/seconds per op).
        """
        with self._state_lock:
            active = len(self._connections)
            total = len(self._clients) + self._retired["clients"]
            requests = (
                sum(c["requests"] for c in self._clients.values())
                + self._retired["requests"]
            )
            counters = dict(self._counters)
            # Same state-lock -> store-lock order as every dispatch
            # path, so health can never deadlock a batch.
            rows = self.store.row_stats() if self.store is not None else None
        by_op: Dict[str, Dict[str, Any]] = {}
        timed = 0
        seconds = 0.0
        for entry in self.telemetry.registry.series(
            "repro.service.request.seconds"
        ):
            op_name = entry["labels"].get("op", "?")
            by_op[op_name] = {
                "count": entry["count"], "seconds": entry["sum"]
            }
            timed += entry["count"]
            seconds += entry["sum"]
        return {
            "service": SERVICE_MAGIC,
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "store": str(self.store_path),
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "connections": {"active": active, "total": total},
            "requests": requests,
            "counters": counters,
            "rows": rows,
            "service_time": {
                "count": timed, "seconds": seconds, "by_op": by_op
            },
            "idle_timeout": self.idle_timeout,
            "checkpoint_interval": self.checkpoint_interval,
        }

    def snapshot_stats(self) -> Dict[str, Any]:
        """The ``stats`` op's payload: rows, store counters, clients."""
        # One state-lock scope for the whole snapshot: per-client rows,
        # the retired aggregate and the store counters are mutated
        # together in _dispatch, so reading them together is what keeps
        # "per-client + retired == store writes" true even mid-batch.
        with self._state_lock:
            per_client = {
                str(client_id): dict(counters)
                for client_id, counters in self._clients.items()
            }
            retired = dict(self._retired)
            counters = dict(self._counters)
            stats = self.store.stats
            store_stats = {
                "hits": stats.hits,
                "misses": stats.misses,
                "writes": stats.writes,
                "skipped_writes": stats.skipped_writes,
            }
            row_stats = self.store.row_stats()
        return {
            "service": SERVICE_MAGIC,
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "socket": str(self.socket_path),
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "counters": counters,
            "row_stats": row_stats,
            "store_stats": store_stats,
            "clients": {
                "total": len(per_client) + retired["clients"],
                "active": sum(
                    1 for c in per_client.values() if c["connected"]
                ),
                "per_client": per_client,
                "retired": retired,
            },
        }
