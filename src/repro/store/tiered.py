"""Two-tier fault dictionary: in-memory LRU over the persistent store.

The kernel talks to one cache object.  Without a store that object is
the plain :class:`~repro.kernel.cache.FaultDictionaryCache`; with one,
it is this :class:`TieredCache`, which keeps the LRU as the first tier
and the SQLite store as the second:

* **read-through** -- a memory miss falls through to the store; a
  store hit is promoted into the LRU so the next lookup is pure
  in-process;
* **write-through** -- every fresh verdict lands in both tiers in the
  same call, so a crashed or killed process never loses completed
  simulation work.

The tier split keeps the hot-path cost model of PR 1 intact (LRU hits
never touch SQLite) while making a *second* process start warm: its
LRU is empty but every lookup the first process answered is one
indexed point ``SELECT`` away.

Stat hygiene: ``stats`` (the LRU counters) and ``store_stats`` are
separate, and :meth:`clear` resets both while leaving the on-disk rows
alone -- dropping the persistent dictionary is an operator action
(delete the file), not a cache-management side effect.

The second tier is duck-typed: anything with the
:class:`FaultDictionaryStore` lookup/write surface slots in, so the
same composition serves a direct SQLite file *and* a
:class:`~repro.store.service.ServiceStore` talking to a verdict-service
daemon over a socket -- the kernel cannot tell the difference.

Place in the store stack
------------------------
This module is the **composition layer** between the kernel and
whatever store backs it: :class:`~repro.store.store.FaultDictionaryStore`
(a local file), :class:`~repro.store.service.ServiceStore` (a daemon
speaking ``docs/PROTOCOL.md``), or a
:class:`~repro.store.resilience.DegradingStore` wrapping either.  The
kernel constructs it via :func:`~repro.store.store.resolve_store` and
never learns which it got.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence, Tuple, Union

from ..telemetry import TELEMETRY_OFF, Telemetry
from .store import FaultDictionaryStore, StoreStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..kernel.cache import FaultDictionaryCache, KernelStats, SimKey


class TieredCache:
    """Write-through/read-through LRU + store composition.

    Drop-in for :class:`FaultDictionaryCache` wherever the kernel uses
    one; the extra surface (``store``, ``store_stats``) is what
    ``--sim-stats`` and :meth:`SimulationKernel.describe_stats` report.
    """

    def __init__(
        self,
        memory: "FaultDictionaryCache",
        store: "Union[FaultDictionaryStore, Any]",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.memory = memory
        self.store = store
        # With a live handle, second-tier passes record read-through /
        # write-through latency histograms; the LRU tier stays
        # untimed -- its counters already live in the kernel stats and
        # a per-hit clock read would dominate the hit itself.
        self.telemetry = telemetry if telemetry is not None else TELEMETRY_OFF

    # -- tier-1 introspection (FaultDictionaryCache surface) --------------------

    @property
    def stats(self) -> "KernelStats":
        return self.memory.stats

    @property
    def store_stats(self) -> StoreStats:
        return self.store.stats

    @property
    def max_entries(self) -> int:
        return self.memory.max_entries

    def __len__(self) -> int:
        return len(self.memory)

    def __contains__(self, key: "SimKey") -> bool:
        return key in self.memory or key in self.store

    def peek(self, key: "SimKey") -> bool:
        """True when either tier holds ``key`` (no stat side effects)."""
        return self.memory.peek(key) or key in self.store

    def snapshot(self) -> Dict["SimKey", Any]:
        """The in-memory tier's entries (diagnostics)."""
        return self.memory.snapshot()

    def resilience(self) -> "Union[Dict[str, Any], None]":
        """The second tier's retry/degradation report, if it keeps one.

        ``ServiceStore`` and ``DegradingStore`` tiers answer a dict
        (``attempts``/``degraded``/``spill``); plain file stores answer
        ``None`` -- they have no transient failure mode to report.
        """
        prober = getattr(self.store, "resilience", None)
        return prober() if callable(prober) else None

    # -- lookups ----------------------------------------------------------------

    def get(self, key: "SimKey", default: Any = None) -> Any:
        value = self.memory.get(key)
        if value is not None:
            return value
        value = self.store.get(key)
        if value is None:
            return default
        # Promote without writing back: the store already has the row.
        self.memory.put(key, value)
        return value

    def get_many(self, keys: Sequence["SimKey"]) -> Dict["SimKey", Any]:
        """Batched lookup: LRU first, then one store pass (single lock
        acquisition) for all the memory misses, with promotion."""
        found: Dict["SimKey", Any] = {}
        missing = []
        for key in keys:
            value = self.memory.get(key)
            if value is not None:
                found[key] = value
            else:
                missing.append(key)
        if missing:
            telemetry = self.telemetry
            if telemetry.enabled:
                started = telemetry.clock()
                from_store = self.store.get_many(missing)
                telemetry.histogram(
                    "repro.store.read_through.seconds", tier="store"
                ).observe(telemetry.clock() - started)
            else:
                from_store = self.store.get_many(missing)
            for key, value in from_store.items():
                self.memory.put(key, value)
            found.update(from_store)
        return found

    # -- writes -----------------------------------------------------------------

    def put(self, key: "SimKey", value: Any) -> None:
        self.memory.put(key, value)
        self.store.put(key, value)

    def put_many(self, pairs: Sequence[Tuple["SimKey", Any]]) -> None:
        for key, value in pairs:
            self.memory.put(key, value)
        telemetry = self.telemetry
        if telemetry.enabled:
            started = telemetry.clock()
            self.store.put_many(pairs)
            telemetry.histogram(
                "repro.store.write_through.seconds", tier="store"
            ).observe(telemetry.clock() - started)
        else:
            self.store.put_many(pairs)

    # -- lifecycle --------------------------------------------------------------

    def clear(self) -> None:
        """Drop the in-memory tier; persistent rows survive."""
        self.memory.clear()

    def compact(self, **kwargs: Any) -> Dict[str, Any]:
        """Prune the persistent tier (see
        :meth:`FaultDictionaryStore.compact`).  The in-memory tier is
        untouched: promoted entries stay hot even when their disk rows
        are pruned, and write-through restores them on the next miss.

        Note that promotion narrows what ``last_used`` means for a
        long-lived kernel: once a row is promoted into the LRU, later
        hits are answered in-process, so the store timestamp records
        the last time a *process* needed the row from disk -- exactly
        the recency that matters for cross-process compaction."""
        return self.store.compact(**kwargs)

    def close(self) -> None:
        self.store.close()
