"""The persistent fault-dictionary store.

PR 1 made one *process* fast: every simulation verdict is memoized in
the kernel's in-memory LRU under a :class:`~repro.kernel.cache.SimKey`.
But the cache dies with the process, so every new CLI invocation
starts cold and re-simulates verdicts computed thousands of times
before.  This module spills the fault dictionary to disk: an SQLite
database (WAL journal, so concurrent readers never block the writer)
whose single ``verdicts`` table is keyed by exactly the four ``SimKey``
fields.  Layered under the LRU as a read-through/write-through second
tier (:class:`~repro.store.tiered.TieredCache`), it makes repeated CLI
invocations -- and many processes hammering one shared dictionary --
share verdicts instead of re-deriving them.

Verdicts are stored as compact signature-keyed rows, not raw matrices:
a detection verdict is one byte (``"1"``/``"0"``), a diagnosis
syndrome a canonical JSON row.  The row format is versioned
(``SCHEMA_VERSION`` in the ``meta`` table); a store written by a
different schema generation is **refused**, never silently migrated or
overwritten -- the operator decides.

Durability rules
----------------
* every ``put``/``put_many`` is one atomic SQLite transaction (atomic
  upsert: ``INSERT .. ON CONFLICT DO UPDATE``);
* opening runs ``PRAGMA quick_check``; a corrupt or truncated file is
  *quarantined* (renamed to ``<name>.corrupt-N`` next to the store)
  and a fresh store is rebuilt in its place, so a damaged dictionary
  costs a cold start, never a crash or a wrong verdict;
* ``readonly=True`` opens an existing store for lookups only
  (``PRAGMA query_only``): writes become counted no-ops, corruption is
  reported instead of repaired.

Lifecycle
---------
A long-lived dictionary grows without bound, so every row carries a
``last_used`` timestamp (stamped on write, bumped on read hits -- the
bump is a usage-tracking side channel, not a verdict write, so it never
appears in :class:`StoreStats`).  :meth:`FaultDictionaryStore.compact`
prunes by age and/or LRU row cap, :meth:`FaultDictionaryStore.merge_from`
folds another store (e.g. a campaign worker's shard) into this one in
one atomic transaction, and :meth:`FaultDictionaryStore.row_stats`
reports the row population for ``repro store stats``.

Place in the store stack
------------------------
This module is the **bottom layer**: the only code that touches
SQLite.  Everything above composes around it --
:class:`~repro.store.tiered.TieredCache` puts the kernel's LRU in
front, :mod:`repro.store.resilience` adds retry/degrade policies for
remote tiers, and :mod:`repro.store.service` serves one instance to a
fleet of socket clients (wire contract in ``docs/PROTOCOL.md``, runbook
in ``docs/OPERATIONS.md``).  :func:`resolve_store` is the single entry
point that picks the right client for a store reference.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..telemetry import TELEMETRY_OFF

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..kernel.cache import SimKey

#: Generation of the on-disk row format.  Bump when the ``verdicts``
#: schema or the verdict encoding changes incompatibly; unknown
#: generations are refused with :class:`StoreSchemaError` rather than
#: misread.  v2: ``last_used`` column (unix seconds) for LRU
#: compaction -- purely additive, so v1 stores upgrade in place on a
#: writable open.
SCHEMA_VERSION = 2

#: How long one connection waits on a writer lock before giving up.
BUSY_TIMEOUT_SECONDS = 30.0

#: URL scheme of the verdict service (:mod:`repro.store.service`).
#: :func:`resolve_store` dispatches ``repro+unix:///path/to.sock``
#: targets to a socket client instead of opening an SQLite file.
SERVICE_URL_PREFIX = "repro+unix://"

#: Read hits only rewrite ``last_used`` when the stored stamp is at
#: least this stale.  Compaction ages are hours-to-days, so minute
#: granularity loses nothing while keeping hot read paths free of
#: write-lock traffic (a warm fan-out worker re-reading the same rows
#: bumps each at most once a minute instead of once per lookup).
LAST_USED_RESOLUTION_SECONDS = 60


class StoreError(RuntimeError):
    """The fault-dictionary store cannot serve the request."""


class StoreSchemaError(StoreError):
    """The on-disk store was written by an incompatible schema
    generation (or is a foreign SQLite database)."""


class CorruptStoreError(StoreError):
    """The store file failed SQLite's integrity check and could not be
    quarantined (e.g. readonly mode)."""


# -- verdict encoding ----------------------------------------------------------
#
# The store holds two value shapes: worst-case detection verdicts
# (bool; domains "sp"/"2p") and diagnosis syndromes (frozensets of
# (element, op, address, actual) failure tuples; domain "syn").  Both
# encodings are canonical -- equal values encode to equal rows -- so
# upserts are idempotent and byte-identity survives the round trip.

_TRUE, _FALSE, _SYNDROME = "1", "0", "S"


def encode_verdict(value: Any) -> str:
    if value is True:
        return _TRUE
    if value is False:
        return _FALSE
    if isinstance(value, frozenset):
        rows = sorted(
            (list(failure) for failure in value),
            key=lambda row: row[:3],  # (element, op, address) is unique
        )
        return _SYNDROME + json.dumps(rows, separators=(",", ":"))
    raise StoreError(
        f"cannot persist a verdict of type {type(value).__name__}"
    )


def decode_verdict(text: str) -> Any:
    if text == _TRUE:
        return True
    if text == _FALSE:
        return False
    if text.startswith(_SYNDROME):
        return frozenset(
            tuple(row) for row in json.loads(text[len(_SYNDROME):])
        )
    raise StoreError(f"unrecognized verdict row {text!r}")


@dataclass
class StoreStats:
    """Lookup/write counters of one store connection.

    ``skipped_writes`` counts puts dropped by readonly mode, so
    ``--sim-stats`` makes a misconfigured read-only campaign visible.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    skipped_writes: int = 0

    def reset(self) -> None:
        self.hits = self.misses = 0
        self.writes = self.skipped_writes = 0

    def __str__(self) -> str:
        text = (
            f"{self.hits} hits / {self.misses} misses,"
            f" {self.writes} writes"
        )
        if self.skipped_writes:
            text += f" ({self.skipped_writes} skipped: readonly)"
        return text


class FaultDictionaryStore:
    """A concurrency-safe, disk-backed fault dictionary.

    One instance owns one SQLite connection.  Any number of processes
    may share the same path: WAL journaling plus per-statement upsert
    transactions keep concurrent writers atomic, and a busy timeout
    absorbs short lock contention.

    >>> import tempfile, pathlib
    >>> from repro.kernel.cache import SimKey
    >>> path = pathlib.Path(tempfile.mkdtemp()) / "dict.sqlite"
    >>> store = FaultDictionaryStore(path)
    >>> key = SimKey("{up(w0)}", "SA0@0", 3)
    >>> store.put(key, True)
    >>> store.get(key)
    True
    >>> store.close()
    """

    def __init__(
        self,
        path: Union[str, Path],
        readonly: bool = False,
        timeout: float = BUSY_TIMEOUT_SECONDS,
    ) -> None:
        self.path = Path(path)
        self.readonly = readonly
        self.timeout = timeout
        self.stats = StoreStats()
        #: Telemetry handle (no-op by default; the verdict daemon
        #: swaps in its live handle so WAL checkpoint timings land in
        #: the ``repro.store.checkpoint.seconds`` histogram).
        self.telemetry = TELEMETRY_OFF
        #: Set to the quarantine path when a corrupt file was set aside.
        self.quarantined: Optional[Path] = None
        self._lock = threading.Lock()
        self._conn = self._open()

    # -- lifecycle --------------------------------------------------------------

    def _open(self) -> sqlite3.Connection:
        if self.readonly and not self.path.exists():
            raise StoreError(
                f"readonly store {self.path} does not exist;"
                " run once without --store-readonly to build it"
            )
        try:
            return self._connect_and_check()
        except StoreSchemaError:
            raise  # refusal, never quarantine: the file is healthy
        except (sqlite3.DatabaseError, CorruptStoreError) as error:
            if self.readonly:
                raise CorruptStoreError(
                    f"readonly store {self.path} is corrupt: {error}"
                ) from error
            self._quarantine()
            return self._connect_and_check()

    def _connect_and_check(self) -> sqlite3.Connection:
        if self.readonly:
            # A readonly open must never create the file: the exists()
            # pre-check in _open is a TOCTOU (the path can vanish
            # between check and connect, and a plain connect would
            # leave a fresh empty database behind).  URI mode=ro makes
            # SQLite itself refuse creation and writes, so PRAGMA
            # query_only below is defence in depth, not the only guard.
            from urllib.parse import quote

            try:
                conn = sqlite3.connect(
                    f"file:{quote(str(self.path), safe='/')}?mode=ro",
                    uri=True,
                    timeout=self.timeout,
                    isolation_level=None,
                    check_same_thread=False,
                )
            except sqlite3.OperationalError as error:
                raise StoreError(
                    f"readonly store {self.path} cannot be opened:"
                    f" {error}"
                ) from error
        else:
            conn = sqlite3.connect(
                str(self.path),
                timeout=self.timeout,
                isolation_level=None,  # autocommit; explicit BEGIN in batches
                check_same_thread=False,
            )
        try:
            conn.execute(
                f"PRAGMA busy_timeout = {int(self.timeout * 1000)}"
            )
            if self.readonly:
                conn.execute("PRAGMA query_only = ON")
            else:
                conn.execute("PRAGMA journal_mode = WAL")
                conn.execute("PRAGMA synchronous = NORMAL")
            check = conn.execute("PRAGMA quick_check").fetchone()
            if check is None or check[0] != "ok":
                raise CorruptStoreError(
                    f"integrity check failed: {check and check[0]}"
                )
            self._check_or_init_schema(conn)
        except BaseException:
            conn.close()
            raise
        return conn

    def _check_or_init_schema(self, conn: sqlite3.Connection) -> None:
        tables = conn.execute("SELECT count(*) FROM sqlite_master").fetchone()
        if tables[0] == 0:
            if self.readonly:  # pragma: no cover - exists() raced away
                raise StoreError(f"readonly store {self.path} is empty")
            # Concurrent processes may race to create the same fresh
            # store (a fanned-out campaign's first run): BEGIN
            # IMMEDIATE serializes the creators on the write lock and
            # IF NOT EXISTS / OR IGNORE make the losers no-ops.  The
            # version check below then validates whatever won.
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.execute(
                    """
                    CREATE TABLE IF NOT EXISTS meta (
                        key   TEXT PRIMARY KEY,
                        value TEXT NOT NULL
                    )
                    """
                )
                conn.execute(
                    """
                    CREATE TABLE IF NOT EXISTS verdicts (
                        signature TEXT    NOT NULL,
                        case_name TEXT    NOT NULL,
                        size      INTEGER NOT NULL,
                        domain    TEXT    NOT NULL,
                        verdict   TEXT    NOT NULL,
                        last_used INTEGER NOT NULL DEFAULT 0,
                        PRIMARY KEY (signature, case_name, size, domain)
                    ) WITHOUT ROWID
                    """
                )
                conn.execute(
                    "CREATE INDEX IF NOT EXISTS verdicts_last_used"
                    " ON verdicts (last_used)"
                )
                conn.execute(
                    "INSERT OR IGNORE INTO meta (key, value)"
                    " VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone() if self._has_table(conn, "meta") else None
        if row is None or not self._has_table(conn, "verdicts"):
            raise StoreSchemaError(
                f"{self.path} is not a fault-dictionary store"
                " (missing meta/verdicts tables)"
            )
        if row[0] == "1" and not self.readonly:
            # v1 -> v2 is purely additive (the last_used column, whose
            # DEFAULT 0 "never used" rows are first in line for LRU
            # pruning -- exactly right for rows of unknown recency),
            # so a v1 dictionary is upgraded in place rather than
            # refused: a known, versioned upgrade is not the silent
            # migration the refusal policy forbids.
            row = (self._upgrade_v1_to_v2(conn),)
        if row[0] != str(SCHEMA_VERSION):
            advice = (
                "open it writable once to upgrade in place"
                if row[0] == "1"
                else "move the file aside to rebuild"
            )
            raise StoreSchemaError(
                f"{self.path} uses store schema {row[0]},"
                f" this build reads schema {SCHEMA_VERSION};"
                f" refusing to touch it ({advice})"
            )

    @staticmethod
    def _upgrade_v1_to_v2(conn: sqlite3.Connection) -> str:
        """Add the v2 ``last_used`` column to a v1 store, in place.

        Serialized on the write lock like schema creation; a racing
        upgrader's ALTER is skipped when the column already appeared.
        Returns the new schema version string.
        """
        conn.execute("BEGIN IMMEDIATE")
        try:
            columns = {
                column[1]
                for column in conn.execute("PRAGMA table_info(verdicts)")
            }
            if "last_used" not in columns:
                conn.execute(
                    "ALTER TABLE verdicts ADD COLUMN"
                    " last_used INTEGER NOT NULL DEFAULT 0"
                )
            conn.execute(
                "CREATE INDEX IF NOT EXISTS verdicts_last_used"
                " ON verdicts (last_used)"
            )
            conn.execute(
                "UPDATE meta SET value = '2' WHERE key = 'schema_version'"
            )
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        return "2"

    @staticmethod
    def _has_table(conn: sqlite3.Connection, name: str) -> bool:
        return conn.execute(
            "SELECT 1 FROM sqlite_master WHERE type='table' AND name=?",
            (name,),
        ).fetchone() is not None

    def _quarantine(self) -> None:
        """Set the damaged file (and WAL droppings) aside, keep going."""
        suffix = 0
        while True:
            target = self.path.with_name(
                f"{self.path.name}.corrupt-{suffix}"
            )
            if not target.exists():
                break
            suffix += 1
        os.replace(self.path, target)
        for dropping in (
            self.path.with_name(self.path.name + "-wal"),
            self.path.with_name(self.path.name + "-shm"),
        ):
            try:
                dropping.unlink()
            except FileNotFoundError:
                pass
        self.quarantined = target

    def checkpoint(self, mode: str = "PASSIVE") -> bool:
        """Fold the WAL back into the main database file, tolerantly.

        ``PASSIVE`` by default so a busy reader never stalls the
        caller (the daemon runs this on a timer).  Returns whether a
        checkpoint actually ran; readonly stores, closed stores and
        SQLite refusals all answer ``False`` rather than raise.
        """
        if self.readonly:
            return False
        if mode not in ("PASSIVE", "FULL", "RESTART", "TRUNCATE"):
            raise ValueError(f"unknown WAL checkpoint mode {mode!r}")
        telemetry = self.telemetry
        started = telemetry.clock() if telemetry.enabled else 0.0
        with self._lock:
            if self._conn is None:
                return False
            try:
                self._conn.execute(f"PRAGMA wal_checkpoint({mode})")
            except sqlite3.Error:
                return False
        if telemetry.enabled:
            telemetry.histogram(
                "repro.store.checkpoint.seconds", mode=mode
            ).observe(telemetry.clock() - started)
        return True

    def close(self) -> None:
        """Checkpoint the WAL and release the connection (idempotent)."""
        conn, self._conn = self._conn, None
        if conn is None:
            return
        if not self.readonly:
            try:
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:  # pragma: no cover - checkpoint is advisory
                pass
        conn.close()

    def __enter__(self) -> "FaultDictionaryStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- lookups ----------------------------------------------------------------

    _SELECT = (
        "SELECT verdict, last_used FROM verdicts"
        " WHERE signature=? AND case_name=? AND size=? AND domain=?"
    )

    _TOUCH = (
        "UPDATE verdicts SET last_used=?"
        " WHERE signature=? AND case_name=? AND size=? AND domain=?"
    )

    def _bump(self, now: int, keys: Sequence["SimKey"]) -> None:
        """Best-effort ``last_used`` refresh for read hits.

        Usage tracking must never fail (or stall) a lookup: when the
        write lock cannot be had -- another worker mid-``put_many``, a
        concurrent compaction holding the file -- the bump is simply
        dropped; the rows keep their previous recency.  Called under
        ``self._lock``.
        """
        rows = [
            (now, key.signature, key.case, key.size, key.domain)
            for key in keys
        ]
        try:
            self._conn.execute("BEGIN IMMEDIATE")
        except sqlite3.OperationalError:
            return
        try:
            self._conn.executemany(self._TOUCH, rows)
        except sqlite3.OperationalError:  # pragma: no cover - lock races
            self._conn.execute("ROLLBACK")
            return
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    def _needs_bump(self, now: int, last_used: int) -> bool:
        return (
            not self.readonly
            and now - last_used >= LAST_USED_RESOLUTION_SECONDS
        )

    def get(self, key: "SimKey", default: Any = None) -> Any:
        """Look up one verdict, counting the hit or miss.

        A hit refreshes the row's ``last_used`` timestamp (skipped in
        readonly mode, rate-limited to
        :data:`LAST_USED_RESOLUTION_SECONDS`, dropped under lock
        contention) so :meth:`compact` can prune least-recently-used
        rows; the bump is usage tracking, not a verdict write, and is
        deliberately absent from :class:`StoreStats`.
        """
        now = int(time.time())
        with self._lock:
            row = self._conn.execute(
                self._SELECT, (key.signature, key.case, key.size, key.domain)
            ).fetchone()
            if row is not None and self._needs_bump(now, row[1]):
                self._bump(now, [key])
        if row is None:
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return decode_verdict(row[0])

    def get_many(self, keys: Iterable["SimKey"]) -> Dict["SimKey", Any]:
        """Point-look up many keys; absent keys are simply not returned.

        Stale hits get their ``last_used`` refreshed in one batched,
        best-effort transaction (see :meth:`get` for the bump rules).
        """
        found: Dict["SimKey", Any] = {}
        stale: list = []
        now = int(time.time())
        with self._lock:
            cursor = self._conn.cursor()
            for key in keys:
                row = cursor.execute(
                    self._SELECT,
                    (key.signature, key.case, key.size, key.domain),
                ).fetchone()
                if row is None:
                    self.stats.misses += 1
                else:
                    self.stats.hits += 1
                    found[key] = decode_verdict(row[0])
                    if self._needs_bump(now, row[1]):
                        stale.append(key)
            if stale:
                self._bump(now, stale)
        return found

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT count(*) FROM verdicts"
            ).fetchone()[0]

    def __contains__(self, key: "SimKey") -> bool:
        with self._lock:
            return self._conn.execute(
                self._SELECT, (key.signature, key.case, key.size, key.domain)
            ).fetchone() is not None

    # -- writes -----------------------------------------------------------------

    _UPSERT = (
        "INSERT INTO verdicts"
        " (signature, case_name, size, domain, verdict, last_used)"
        " VALUES (?, ?, ?, ?, ?, ?)"
        " ON CONFLICT (signature, case_name, size, domain)"
        " DO UPDATE SET verdict = excluded.verdict,"
        "               last_used = excluded.last_used"
    )

    def put(self, key: "SimKey", value: Any) -> None:
        """Atomically upsert one verdict (no-op in readonly mode)."""
        if self.readonly:
            self.stats.skipped_writes += 1
            return
        row = (
            key.signature, key.case, key.size, key.domain,
            encode_verdict(value), int(time.time()),
        )
        with self._lock:
            self._conn.execute(self._UPSERT, row)
        self.stats.writes += 1

    def put_many(self, pairs: Sequence[Tuple["SimKey", Any]]) -> None:
        """Upsert a batch in one transaction: all land or none do."""
        if not pairs:
            return
        if self.readonly:
            self.stats.skipped_writes += len(pairs)
            return
        now = int(time.time())
        rows = [
            (key.signature, key.case, key.size, key.domain,
             encode_verdict(value), now)
            for key, value in pairs
        ]
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.executemany(self._UPSERT, rows)
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        self.stats.writes += len(rows)

    # -- lifecycle maintenance --------------------------------------------------

    def compact(
        self,
        max_rows: Optional[int] = None,
        max_age: Optional[float] = None,
        now: Optional[float] = None,
        vacuum: bool = True,
    ) -> Dict[str, Any]:
        """Prune the dictionary: drop stale rows, cap the population.

        ``max_age`` (seconds) removes every row whose ``last_used`` is
        older than ``now - max_age``; ``max_rows`` then removes
        least-recently-used rows (ties broken by primary key, so
        compaction is deterministic) until at most ``max_rows`` remain.
        Both prunes run in one transaction; ``vacuum`` reclaims the
        freed pages afterwards.  Returns a stats dict suitable for
        machine-readable reporting (``repro store compact --json``).
        """
        if self.readonly:
            raise StoreError(f"cannot compact readonly store {self.path}")
        if max_rows is not None and max_rows < 0:
            raise StoreError("max_rows must be >= 0")
        if max_age is not None and max_age < 0:
            raise StoreError("max_age must be >= 0 seconds")
        now = time.time() if now is None else now
        with self._lock:
            # Fold the WAL in first so the before/after byte counts
            # describe the whole dictionary, not just the main file.
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            bytes_before = self.path.stat().st_size
            rows_before = self._conn.execute(
                "SELECT count(*) FROM verdicts"
            ).fetchone()[0]
            removed_by_age = removed_by_cap = 0
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                if max_age is not None:
                    removed_by_age = self._conn.execute(
                        "DELETE FROM verdicts WHERE last_used < ?",
                        (int(now - max_age),),
                    ).rowcount
                if max_rows is not None:
                    remaining = rows_before - removed_by_age
                    excess = remaining - max_rows
                    if excess > 0:
                        removed_by_cap = self._conn.execute(
                            "DELETE FROM verdicts WHERE"
                            " (signature, case_name, size, domain) IN ("
                            "   SELECT signature, case_name, size, domain"
                            "   FROM verdicts"
                            "   ORDER BY last_used ASC, signature ASC,"
                            "            case_name ASC, size ASC, domain ASC"
                            "   LIMIT ?)",
                            (excess,),
                        ).rowcount
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
            if vacuum:
                self._conn.execute("VACUUM")
            # In WAL mode VACUUM rewrites through the WAL; the main
            # file only shrinks once that WAL is checkpointed back.
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        return {
            "path": str(self.path),
            "rows_before": rows_before,
            "removed_by_age": removed_by_age,
            "removed_by_cap": removed_by_cap,
            "rows_after": rows_before - removed_by_age - removed_by_cap,
            "bytes_before": bytes_before,
            "bytes_after": self.path.stat().st_size,
        }

    def merge_from(
        self, source: "Union[str, Path, FaultDictionaryStore]"
    ) -> Dict[str, int]:
        """Fold another store's rows into this one, atomically.

        This is the sharded campaign fan-out's join step: each worker
        writes its own shard store, then the parent merges every shard
        into the main dictionary in one transaction per shard.

        Conflict resolution: when both stores hold a row for the same
        ``SimKey``, the row with the **newer** ``last_used`` wins the
        verdict (the incoming row wins ties -- freshly simulated shard
        rows supersede what the main store remembered), and the merged
        ``last_used`` is the maximum of the two.  Returns
        ``{"source_rows", "inserted", "merged"}``.
        """
        if self.readonly:
            raise StoreError(
                f"cannot merge into readonly store {self.path}"
            )
        source_path = Path(
            source.path
            if isinstance(source, FaultDictionaryStore)
            else source
        )
        if source_path.resolve() == self.path.resolve():
            raise StoreError(f"cannot merge {self.path} into itself")
        # Validate the source generation through the normal open path
        # (schema refusal, corruption report) before touching our rows.
        if not isinstance(source, FaultDictionaryStore):
            with FaultDictionaryStore(source_path, readonly=True):
                pass
        with self._lock:
            rows_before = self._conn.execute(
                "SELECT count(*) FROM verdicts"
            ).fetchone()[0]
            self._conn.execute("ATTACH DATABASE ? AS merge_src",
                               (str(source_path),))
            try:
                source_rows = self._conn.execute(
                    "SELECT count(*) FROM merge_src.verdicts"
                ).fetchone()[0]
                self._conn.execute("BEGIN IMMEDIATE")
                try:
                    self._conn.execute(
                        "INSERT INTO verdicts"
                        " (signature, case_name, size, domain,"
                        "  verdict, last_used)"
                        " SELECT signature, case_name, size, domain,"
                        "        verdict, last_used"
                        " FROM merge_src.verdicts WHERE true"
                        " ON CONFLICT (signature, case_name, size, domain)"
                        " DO UPDATE SET"
                        "   verdict = CASE"
                        "     WHEN excluded.last_used >= verdicts.last_used"
                        "     THEN excluded.verdict ELSE verdicts.verdict"
                        "   END,"
                        "   last_used = max(verdicts.last_used,"
                        "                   excluded.last_used)"
                    )
                except BaseException:
                    self._conn.execute("ROLLBACK")
                    raise
                self._conn.execute("COMMIT")
                rows_after = self._conn.execute(
                    "SELECT count(*) FROM verdicts"
                ).fetchone()[0]
            finally:
                self._conn.execute("DETACH DATABASE merge_src")
        inserted = rows_after - rows_before
        return {
            "source_rows": source_rows,
            "inserted": inserted,
            "merged": source_rows - inserted,
        }

    def row_stats(self) -> Dict[str, Any]:
        """The row population report behind ``repro store stats``."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT count(*) FROM verdicts"
            ).fetchone()[0]
            by_domain = dict(
                self._conn.execute(
                    "SELECT domain, count(*) FROM verdicts"
                    " GROUP BY domain ORDER BY domain"
                ).fetchall()
            )
            used = self._conn.execute(
                "SELECT min(last_used), max(last_used) FROM verdicts"
            ).fetchone()
        return {
            "path": str(self.path),
            "schema_version": SCHEMA_VERSION,
            "rows": rows,
            "by_domain": by_domain,
            "bytes": self.path.stat().st_size,
            "last_used_min": used[0],
            "last_used_max": used[1],
        }

    # -- description ------------------------------------------------------------

    def describe(self) -> str:
        mode = " readonly" if self.readonly else ""
        return f"store [{self.path.name}{mode}]: {self.stats}"


def resolve_store(
    store: "Union[str, Path, FaultDictionaryStore, Any, None]",
    readonly: bool = False,
    retry: Optional[Any] = None,
) -> Optional[Any]:
    """Turn a store reference into a ready verdict store.

    Accepts ``None`` (no store); a ready store object -- a
    :class:`FaultDictionaryStore` or a service client -- returned
    as-is; a ``repro+unix://`` verdict-service URL, dispatched to
    :class:`repro.store.service.ServiceStore` (no SQLite file is
    opened client-side); or a filesystem path, opened directly.

    ``retry`` (a :class:`repro.store.resilience.RetryPolicy`) only
    applies to the service-URL case; file stores have no transient
    failure mode worth a policy, and ready objects keep their own.
    """
    if store is None:
        return None
    if isinstance(store, (str, Path)):
        text = str(store)
        if text.startswith(SERVICE_URL_PREFIX):
            from .service import ServiceStore

            return ServiceStore(text, readonly=readonly, retry=retry)
        return FaultDictionaryStore(store, readonly=readonly)
    # A ready store-like instance (FaultDictionaryStore, ServiceStore,
    # or a user-provided tier): the caller owns its lifecycle.
    return store
