"""The persistent fault-dictionary store.

PR 1 made one *process* fast: every simulation verdict is memoized in
the kernel's in-memory LRU under a :class:`~repro.kernel.cache.SimKey`.
But the cache dies with the process, so every new CLI invocation
starts cold and re-simulates verdicts computed thousands of times
before.  This module spills the fault dictionary to disk: an SQLite
database (WAL journal, so concurrent readers never block the writer)
whose single ``verdicts`` table is keyed by exactly the four ``SimKey``
fields.  Layered under the LRU as a read-through/write-through second
tier (:class:`~repro.store.tiered.TieredCache`), it makes repeated CLI
invocations -- and many processes hammering one shared dictionary --
share verdicts instead of re-deriving them.

Verdicts are stored as compact signature-keyed rows, not raw matrices:
a detection verdict is one byte (``"1"``/``"0"``), a diagnosis
syndrome a canonical JSON row.  The row format is versioned
(``SCHEMA_VERSION`` in the ``meta`` table); a store written by a
different schema generation is **refused**, never silently migrated or
overwritten -- the operator decides.

Durability rules
----------------
* every ``put``/``put_many`` is one atomic SQLite transaction (atomic
  upsert: ``INSERT .. ON CONFLICT DO UPDATE``);
* opening runs ``PRAGMA quick_check``; a corrupt or truncated file is
  *quarantined* (renamed to ``<name>.corrupt-N`` next to the store)
  and a fresh store is rebuilt in its place, so a damaged dictionary
  costs a cold start, never a crash or a wrong verdict;
* ``readonly=True`` opens an existing store for lookups only
  (``PRAGMA query_only``): writes become counted no-ops, corruption is
  reported instead of repaired.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..kernel.cache import SimKey

#: Generation of the on-disk row format.  Bump when the ``verdicts``
#: schema or the verdict encoding changes incompatibly; old stores are
#: refused with :class:`StoreSchemaError` rather than misread.
SCHEMA_VERSION = 1

#: How long one connection waits on a writer lock before giving up.
BUSY_TIMEOUT_SECONDS = 30.0


class StoreError(RuntimeError):
    """The fault-dictionary store cannot serve the request."""


class StoreSchemaError(StoreError):
    """The on-disk store was written by an incompatible schema
    generation (or is a foreign SQLite database)."""


class CorruptStoreError(StoreError):
    """The store file failed SQLite's integrity check and could not be
    quarantined (e.g. readonly mode)."""


# -- verdict encoding ----------------------------------------------------------
#
# The store holds two value shapes: worst-case detection verdicts
# (bool; domains "sp"/"2p") and diagnosis syndromes (frozensets of
# (element, op, address, actual) failure tuples; domain "syn").  Both
# encodings are canonical -- equal values encode to equal rows -- so
# upserts are idempotent and byte-identity survives the round trip.

_TRUE, _FALSE, _SYNDROME = "1", "0", "S"


def encode_verdict(value: Any) -> str:
    if value is True:
        return _TRUE
    if value is False:
        return _FALSE
    if isinstance(value, frozenset):
        rows = sorted(
            (list(failure) for failure in value),
            key=lambda row: row[:3],  # (element, op, address) is unique
        )
        return _SYNDROME + json.dumps(rows, separators=(",", ":"))
    raise StoreError(
        f"cannot persist a verdict of type {type(value).__name__}"
    )


def decode_verdict(text: str) -> Any:
    if text == _TRUE:
        return True
    if text == _FALSE:
        return False
    if text.startswith(_SYNDROME):
        return frozenset(
            tuple(row) for row in json.loads(text[len(_SYNDROME):])
        )
    raise StoreError(f"unrecognized verdict row {text!r}")


@dataclass
class StoreStats:
    """Lookup/write counters of one store connection.

    ``skipped_writes`` counts puts dropped by readonly mode, so
    ``--sim-stats`` makes a misconfigured read-only campaign visible.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    skipped_writes: int = 0

    def reset(self) -> None:
        self.hits = self.misses = 0
        self.writes = self.skipped_writes = 0

    def __str__(self) -> str:
        text = (
            f"{self.hits} hits / {self.misses} misses,"
            f" {self.writes} writes"
        )
        if self.skipped_writes:
            text += f" ({self.skipped_writes} skipped: readonly)"
        return text


class FaultDictionaryStore:
    """A concurrency-safe, disk-backed fault dictionary.

    One instance owns one SQLite connection.  Any number of processes
    may share the same path: WAL journaling plus per-statement upsert
    transactions keep concurrent writers atomic, and a busy timeout
    absorbs short lock contention.

    >>> import tempfile, pathlib
    >>> from repro.kernel.cache import SimKey
    >>> path = pathlib.Path(tempfile.mkdtemp()) / "dict.sqlite"
    >>> store = FaultDictionaryStore(path)
    >>> key = SimKey("{up(w0)}", "SA0@0", 3)
    >>> store.put(key, True)
    >>> store.get(key)
    True
    >>> store.close()
    """

    def __init__(
        self,
        path: Union[str, Path],
        readonly: bool = False,
        timeout: float = BUSY_TIMEOUT_SECONDS,
    ) -> None:
        self.path = Path(path)
        self.readonly = readonly
        self.timeout = timeout
        self.stats = StoreStats()
        #: Set to the quarantine path when a corrupt file was set aside.
        self.quarantined: Optional[Path] = None
        self._lock = threading.Lock()
        self._conn = self._open()

    # -- lifecycle --------------------------------------------------------------

    def _open(self) -> sqlite3.Connection:
        if self.readonly and not self.path.exists():
            raise StoreError(
                f"readonly store {self.path} does not exist;"
                " run once without --store-readonly to build it"
            )
        try:
            return self._connect_and_check()
        except StoreSchemaError:
            raise  # refusal, never quarantine: the file is healthy
        except (sqlite3.DatabaseError, CorruptStoreError) as error:
            if self.readonly:
                raise CorruptStoreError(
                    f"readonly store {self.path} is corrupt: {error}"
                ) from error
            self._quarantine()
            return self._connect_and_check()

    def _connect_and_check(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            str(self.path),
            timeout=self.timeout,
            isolation_level=None,  # autocommit; explicit BEGIN in batches
            check_same_thread=False,
        )
        try:
            conn.execute(
                f"PRAGMA busy_timeout = {int(self.timeout * 1000)}"
            )
            if self.readonly:
                conn.execute("PRAGMA query_only = ON")
            else:
                conn.execute("PRAGMA journal_mode = WAL")
                conn.execute("PRAGMA synchronous = NORMAL")
            check = conn.execute("PRAGMA quick_check").fetchone()
            if check is None or check[0] != "ok":
                raise CorruptStoreError(
                    f"integrity check failed: {check and check[0]}"
                )
            self._check_or_init_schema(conn)
        except BaseException:
            conn.close()
            raise
        return conn

    def _check_or_init_schema(self, conn: sqlite3.Connection) -> None:
        tables = conn.execute("SELECT count(*) FROM sqlite_master").fetchone()
        if tables[0] == 0:
            if self.readonly:  # pragma: no cover - exists() raced away
                raise StoreError(f"readonly store {self.path} is empty")
            conn.executescript(
                """
                CREATE TABLE meta (
                    key   TEXT PRIMARY KEY,
                    value TEXT NOT NULL
                );
                CREATE TABLE verdicts (
                    signature TEXT    NOT NULL,
                    case_name TEXT    NOT NULL,
                    size      INTEGER NOT NULL,
                    domain    TEXT    NOT NULL,
                    verdict   TEXT    NOT NULL,
                    PRIMARY KEY (signature, case_name, size, domain)
                ) WITHOUT ROWID;
                """
            )
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            return
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone() if self._has_table(conn, "meta") else None
        if row is None or not self._has_table(conn, "verdicts"):
            raise StoreSchemaError(
                f"{self.path} is not a fault-dictionary store"
                " (missing meta/verdicts tables)"
            )
        if row[0] != str(SCHEMA_VERSION):
            raise StoreSchemaError(
                f"{self.path} uses store schema {row[0]},"
                f" this build reads schema {SCHEMA_VERSION};"
                " refusing to touch it (move the file aside to rebuild)"
            )

    @staticmethod
    def _has_table(conn: sqlite3.Connection, name: str) -> bool:
        return conn.execute(
            "SELECT 1 FROM sqlite_master WHERE type='table' AND name=?",
            (name,),
        ).fetchone() is not None

    def _quarantine(self) -> None:
        """Set the damaged file (and WAL droppings) aside, keep going."""
        suffix = 0
        while True:
            target = self.path.with_name(
                f"{self.path.name}.corrupt-{suffix}"
            )
            if not target.exists():
                break
            suffix += 1
        os.replace(self.path, target)
        for dropping in (
            self.path.with_name(self.path.name + "-wal"),
            self.path.with_name(self.path.name + "-shm"),
        ):
            try:
                dropping.unlink()
            except FileNotFoundError:
                pass
        self.quarantined = target

    def close(self) -> None:
        """Checkpoint the WAL and release the connection (idempotent)."""
        conn, self._conn = self._conn, None
        if conn is None:
            return
        if not self.readonly:
            try:
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:  # pragma: no cover - checkpoint is advisory
                pass
        conn.close()

    def __enter__(self) -> "FaultDictionaryStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- lookups ----------------------------------------------------------------

    _SELECT = (
        "SELECT verdict FROM verdicts"
        " WHERE signature=? AND case_name=? AND size=? AND domain=?"
    )

    def get(self, key: "SimKey", default: Any = None) -> Any:
        """Look up one verdict, counting the hit or miss."""
        with self._lock:
            row = self._conn.execute(
                self._SELECT, (key.signature, key.case, key.size, key.domain)
            ).fetchone()
        if row is None:
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return decode_verdict(row[0])

    def get_many(self, keys: Iterable["SimKey"]) -> Dict["SimKey", Any]:
        """Point-look up many keys; absent keys are simply not returned."""
        found: Dict["SimKey", Any] = {}
        with self._lock:
            cursor = self._conn.cursor()
            for key in keys:
                row = cursor.execute(
                    self._SELECT,
                    (key.signature, key.case, key.size, key.domain),
                ).fetchone()
                if row is None:
                    self.stats.misses += 1
                else:
                    self.stats.hits += 1
                    found[key] = decode_verdict(row[0])
        return found

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT count(*) FROM verdicts"
            ).fetchone()[0]

    def __contains__(self, key: "SimKey") -> bool:
        with self._lock:
            return self._conn.execute(
                self._SELECT, (key.signature, key.case, key.size, key.domain)
            ).fetchone() is not None

    # -- writes -----------------------------------------------------------------

    _UPSERT = (
        "INSERT INTO verdicts (signature, case_name, size, domain, verdict)"
        " VALUES (?, ?, ?, ?, ?)"
        " ON CONFLICT (signature, case_name, size, domain)"
        " DO UPDATE SET verdict = excluded.verdict"
    )

    def put(self, key: "SimKey", value: Any) -> None:
        """Atomically upsert one verdict (no-op in readonly mode)."""
        if self.readonly:
            self.stats.skipped_writes += 1
            return
        row = (
            key.signature, key.case, key.size, key.domain,
            encode_verdict(value),
        )
        with self._lock:
            self._conn.execute(self._UPSERT, row)
        self.stats.writes += 1

    def put_many(self, pairs: Sequence[Tuple["SimKey", Any]]) -> None:
        """Upsert a batch in one transaction: all land or none do."""
        if not pairs:
            return
        if self.readonly:
            self.stats.skipped_writes += len(pairs)
            return
        rows = [
            (key.signature, key.case, key.size, key.domain,
             encode_verdict(value))
            for key, value in pairs
        ]
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.executemany(self._UPSERT, rows)
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        self.stats.writes += len(rows)

    # -- description ------------------------------------------------------------

    def describe(self) -> str:
        mode = " readonly" if self.readonly else ""
        return f"store [{self.path.name}{mode}]: {self.stats}"


def resolve_store(
    store: "Union[str, Path, FaultDictionaryStore, None]",
    readonly: bool = False,
) -> Optional[FaultDictionaryStore]:
    """Turn a store path (or ready instance, or ``None``) into a store."""
    if store is None:
        return None
    if isinstance(store, FaultDictionaryStore):
        return store
    return FaultDictionaryStore(store, readonly=readonly)
