"""Declarative simulation campaigns over the persistent store.

A *campaign* is the production shape of the repository's workloads: a
batch job that sweeps ``tests x fault models x sizes x backends``
through the simulation kernel, deduplicating every verdict through the
persistent fault-dictionary store (two jobs probing the same (test,
case, size) pair simulate it once, ever -- even across campaigns and
processes) and emitting a machine-readable *results manifest* that
downstream tooling (CI artifact diffing, dashboards, regression bots)
can consume without scraping CLI output.

The spec is plain JSON (see ``examples/campaign_table3.json``)::

    {
      "name": "table3-sweep",
      "tests": ["MATS", "MarchC-", "{up(w0); up(r0,w1); down(r1)}"],
      "faults": ["SAF", "TF", "ADF"],
      "sizes": [3, 4],
      "backends": ["bitparallel"]
    }

``tests`` accepts catalog names or literal March notation; ``faults``
are fault-model names; ``sizes``/``backends`` default to ``[3]`` /
``["bitparallel"]``.  An optional ``"store"`` field names the
dictionary file -- or a ``repro+unix:///path/to.sock`` verdict-service
URL, in which case every worker becomes a socket client of one
serialized store owner and no worker opens SQLite at all (the CLI
``--store`` flag overrides it).

Execution model
---------------
The unit of work is one **job** = ``(test, backend, size)``; the job
list is the deterministic cross product (backends outermost, then
sizes, then tests, all in spec order).  ``run_campaign(spec, jobs=N)``
fans the jobs out over ``N`` worker processes:

* every job runs on a **fresh** kernel -- cold LRU, its own store
  connection -- so all cross-job deduplication flows through the
  persistent store, exactly like separate CLI invocations would;
* the manifest lists jobs and results in job order no matter which
  worker finished first (deterministic fan-out: a ``--jobs 4`` run is
  byte-identical to ``--jobs 1`` modulo timings and cache counters --
  ``normalized_manifest`` strips exactly those);
* one crashed job is *recorded* (its manifest entry carries an
  ``"error"`` string, ``totals["failed"]`` counts it) and the sweep
  continues -- a 1000-job sweep never dies at job 999;
* with ``shard=True`` each **job** writes its own shard store
  (``<store>.shard-<job index>``) instead of contending on the shared
  WAL file; the shards are merged into the main store atomically at
  the end (:meth:`~repro.store.store.FaultDictionaryStore.merge_from`)
  and deleted.  Shared-WAL mode (the default) deduplicates *during*
  the run; shard mode trades duplicate simulation (and one small
  SQLite file per job) for zero writer contention.

Resilience (verdict-service stores)
-----------------------------------
A service-URL campaign survives its daemon faulting underneath it.
Each worker's :class:`~repro.store.service.ServiceStore` retries
transient socket failures with backoff (the ``retry`` policy rides
along in the job request), and when a policy is exhausted the worker
*degrades* instead of failing: its client is wrapped in a
:class:`~repro.store.resilience.DegradingStore` that demotes to a
per-worker SQLite spill shard (``<socket>.spill-<job index>``) --
the same shard machinery as ``shard=True`` -- so the job finishes
with full write capture.  Surviving spills are merged back at the
end (through the daemon's ``merge`` op when it recovered, directly
into the server's store file otherwise) and the schema-3 manifest
records ``degraded``/``attempts``/``spill`` per job plus a
``resilience`` block, instead of failed rows.  Infrastructure faults
change *where* verdicts land, never *what* they are, so
``normalized_manifest`` strips all of it.

This module depends on :mod:`repro.kernel`, which imports the store
package at startup -- import it as ``repro.store.campaign`` directly,
never from ``repro.store``'s namespace.
"""

from __future__ import annotations

import copy
import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

from ..faults.faultlist import FaultList
from ..faults.library import MODEL_REGISTRY
from ..kernel import SimulationKernel, validate_backend_name
from ..march.catalog import by_name
from ..march.test import MarchTest, parse_march
from ..telemetry import Telemetry, merge_snapshots
from .resilience import DegradingStore, RetryPolicy
from .service import ServiceStore, is_service_url, service_socket_path
from .store import FaultDictionaryStore, StoreError

#: Generation of the manifest payload layout.  v2: one job per
#: (test, backend, size), per-job ``test``/``error`` fields, the
#: ``parallel`` execution block and ``totals["failed"]``.  v3: the
#: top-level ``resilience`` block, per-job ``degraded``/``attempts``/
#: ``spill`` and ``totals["degraded"]``.  v4: per-job ``telemetry``
#: blocks (metrics snapshot + span trees) and the top-level
#: ``telemetry`` merge -- all run-dependent, all stripped by
#: :func:`normalized_manifest`.
MANIFEST_SCHEMA = 4

DEFAULT_MANIFEST_NAME = "campaign_manifest.json"

#: A progress sink: called with (completed so far, total, job record)
#: as each job finishes, in completion -- not job -- order.
ProgressSink = Callable[[int, int, Dict[str, Any]], None]


class CampaignSpecError(ValueError):
    """The campaign spec is malformed."""


@dataclass(frozen=True)
class CampaignSpec:
    """A validated, immutable campaign description."""

    name: str
    tests: Tuple[str, ...]
    faults: Tuple[str, ...]
    sizes: Tuple[int, ...] = (3,)
    backends: Tuple[str, ...] = ("bitparallel",)
    store: Optional[str] = None

    _KNOWN_KEYS = frozenset(
        {"name", "tests", "faults", "sizes", "backends", "store"}
    )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise CampaignSpecError("campaign spec must be a JSON object")
        unknown = set(data) - cls._KNOWN_KEYS
        if unknown:
            raise CampaignSpecError(
                f"unknown campaign spec keys: {sorted(unknown)};"
                f" known: {sorted(cls._KNOWN_KEYS)}"
            )
        try:
            tests = tuple(data["tests"])
            faults = tuple(data["faults"])
        except KeyError as missing:
            raise CampaignSpecError(
                f"campaign spec requires the {missing} key"
            ) from None
        if not tests or not all(isinstance(t, str) for t in tests):
            raise CampaignSpecError("'tests' must be non-empty strings")
        if not faults:
            raise CampaignSpecError("'faults' must name at least one model")
        for model in faults:
            if not isinstance(model, str):
                raise CampaignSpecError(
                    f"fault model names must be strings, got {model!r}"
                )
            if model.upper() not in MODEL_REGISTRY:
                raise CampaignSpecError(
                    f"unknown fault model {model!r};"
                    f" known: {sorted(MODEL_REGISTRY)}"
                )
        sizes = tuple(data.get("sizes", (3,)))
        if not sizes or not all(
            isinstance(s, int) and not isinstance(s, bool) and s > 0
            for s in sizes
        ):
            raise CampaignSpecError("'sizes' must be positive integers")
        backends = tuple(data.get("backends", ("bitparallel",)))
        for backend in backends:
            try:
                validate_backend_name(backend)
            except ValueError as error:
                raise CampaignSpecError(str(error)) from None
        store = data.get("store")
        return cls(
            name=str(data.get("name", "campaign")),
            tests=tests,
            faults=tuple(f.upper() for f in faults),
            sizes=sizes,
            backends=backends,
            store=str(store) if store is not None else None,
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignSpec":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except OSError as error:
            raise CampaignSpecError(
                f"cannot read campaign spec {path}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise CampaignSpecError(
                f"campaign spec {path} is not valid JSON: {error}"
            ) from error
        return cls.from_dict(data)

    # -- resolution -------------------------------------------------------------

    def resolved_tests(self) -> List[MarchTest]:
        """Catalog names or literal March notation, in spec order."""
        return [_resolve_test(text) for text in self.tests]

    def fault_list(self) -> FaultList:
        return FaultList.from_names(*self.faults)

    def jobs(self) -> List[Tuple[str, int, str]]:
        """(backend, size, test) triples, the deterministic job order.

        Backends vary slowest, then sizes, then tests: one backend
        finishes populating the store for every (size, test) before the
        next backend starts, which makes the later backends' jobs pure
        dictionary lookups in a sequential shared-store run.
        """
        return [
            (backend, size, test)
            for backend in self.backends
            for size in self.sizes
            for test in self.tests
        ]


def _resolve_test(text: str) -> MarchTest:
    try:
        return by_name(text)
    except KeyError:
        return parse_march(text, name=text)


# -- the job runner -------------------------------------------------------------
#
# One job = one (test, backend, size) cell of the sweep, executed on a
# fresh kernel in whatever process the scheduler put it.  Everything a
# worker needs crosses the process boundary as this picklable request;
# test resolution happens *inside* the job so a malformed test name (or
# any other per-job explosion) fails that job alone.


@dataclass(frozen=True)
class _JobRequest:
    index: int
    test_text: str
    backend: str
    size: int
    faults: Tuple[str, ...]
    store_path: Optional[str]
    store_readonly: bool
    retry: Optional[RetryPolicy] = None
    degrade: bool = False
    spill_path: Optional[str] = None


def _open_job_store(request: _JobRequest) -> Optional[Any]:
    """Open this job's store tier, with resilience for service URLs.

    File stores (and storeless jobs) keep the historical path-based
    opening inside the kernel and return ``None`` here.  Service URLs
    become an explicit :class:`ServiceStore` carrying the campaign's
    retry policy -- wrapped in a :class:`DegradingStore` over the
    job's private spill shard when degradation is on -- which the
    kernel then layers under its LRU like any caller-provided tier.
    """
    if request.store_path is None or not is_service_url(request.store_path):
        return None
    client = ServiceStore(
        request.store_path,
        readonly=request.store_readonly,
        retry=request.retry,
    )
    if request.degrade and not request.store_readonly \
            and request.spill_path is not None:
        return DegradingStore(client, request.spill_path)
    return client


def _simulate_job(request: _JobRequest) -> Dict[str, Any]:
    started = time.perf_counter()
    store_obj = _open_job_store(request)
    # Every job runs instrumented: the per-batch cost is microseconds
    # against a multi-millisecond job, and it means --metrics/--trace
    # need no extra worker plumbing -- each record carries its own
    # snapshot and span tree, merged campaign-wide by run_campaign.
    telemetry = Telemetry()
    kernel = SimulationKernel(
        backend=request.backend,
        store=store_obj if store_obj is not None else request.store_path,
        store_readonly=request.store_readonly,
        telemetry=telemetry,
    )
    # try/finally around *everything* after kernel construction: a job
    # that blows up mid-simulation must still checkpoint and close its
    # store connection, or a crashing sweep would leak WAL files and
    # drop verdicts its backend already computed.
    try:
        test = _resolve_test(request.test_text)
        cases = FaultList.from_names(*request.faults).instances(request.size)
        report = kernel.simulate(test, cases, request.size)
        seconds = time.perf_counter() - started
        prober = getattr(kernel.store, "resilience", None)
        resilience = (
            prober() if callable(prober)
            else {"attempts": 0, "degraded": False, "spill": None}
        )
        record: Dict[str, Any] = {
            "test": test.name or str(test),
            "notation": str(test),
            "backend": request.backend,
            "size": request.size,
            "fault_cases": len(cases),
            "seconds": seconds,
            "error": None,
            "degraded": resilience["degraded"],
            "attempts": resilience["attempts"],
            "spill": resilience["spill"],
            "cache": {
                "hits": kernel.stats.hits,
                "misses": kernel.stats.misses,
            },
            "served": dict(getattr(kernel.backend, "served", None) or {}),
        }
        if kernel.store is not None:
            record["store"] = {
                "hits": kernel.store.stats.hits,
                "misses": kernel.store.stats.misses,
                "writes": kernel.store.stats.writes,
                "skipped_writes": kernel.store.stats.skipped_writes,
            }
        record["telemetry"] = {
            "metrics": telemetry.snapshot(),
            "spans": telemetry.span_trees(),
        }
        record["result"] = {
            "test": test.name or str(test),
            "notation": str(test),
            "size": request.size,
            "backend": request.backend,
            "fault_cases": len(cases),
            "detected": len(report.detected),
            "missed": list(report.missed),
            "coverage": report.coverage,
        }
        return record
    finally:
        try:
            kernel.close()
        finally:
            # The kernel never owns a caller-provided tier; a
            # service/degrading store opened here is ours to close
            # (flushing the spill's WAL so the merge sees every row).
            if store_obj is not None:
                store_obj.close()


def _execute_job(request: _JobRequest) -> Dict[str, Any]:
    """Top-level worker entry point: never raises for job-level errors.

    A failing job returns an error record instead of propagating, so
    one bad cell of the sweep cannot take down its worker (or, in
    sequential mode, the whole campaign).  Only catastrophic worker
    death (OOM kill, segfault) surfaces to the parent as a broken
    future, which the scheduler also records as a per-job failure.
    """
    try:
        return _simulate_job(request)
    except Exception as error:  # noqa: BLE001 - isolation boundary
        return _error_record(request, error)


def _error_record(request: _JobRequest, error: BaseException) -> Dict[str, Any]:
    return {
        "test": request.test_text,
        "notation": None,
        "backend": request.backend,
        "size": request.size,
        "fault_cases": None,
        "seconds": None,
        "error": f"{type(error).__name__}: {error}",
        "degraded": False,
        "attempts": 0,
        "spill": None,
        "cache": None,
        "served": {},
        "telemetry": None,
        "result": None,
    }


def _pool_context():
    """Prefer fork (cheap, inherits the loaded fault library); fall
    back to the platform default where fork does not exist."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def run_campaign(
    spec: CampaignSpec,
    store_path: Optional[str] = None,
    store_readonly: bool = False,
    jobs: int = 1,
    shard: bool = False,
    progress: Optional[ProgressSink] = None,
    retry: Optional[RetryPolicy] = None,
    degrade: bool = True,
    clock: Optional[Callable[[], float]] = None,
) -> Dict[str, Any]:
    """Execute every job of ``spec``; return the results manifest.

    ``jobs`` is the worker-pool width: 1 (default) runs the jobs
    sequentially in-process, ``N > 1`` fans them out over ``N``
    processes.  Either way the manifest is ordered by the deterministic
    job order of :meth:`CampaignSpec.jobs` and each job's verdicts are
    the kernel's usual byte-identical results, so the fan-out changes
    wall-clock, never content.

    ``shard=True`` (needs a writable *file* store and is pointless
    without one) gives every job a private shard store and merges the
    shards into the main dictionary atomically after the sweep; the
    default writes through the shared WAL store, deduplicating live.
    With a verdict-service URL as the store, workers write through the
    daemon instead -- one serialized WAL owner, no shard-and-merge
    step -- which is the designated substrate for cross-host fan-out.

    ``progress`` is called as each job completes (in completion order)
    with ``(done, total, job_record)``.

    ``retry`` is the per-job :class:`RetryPolicy` for service-URL
    stores (``None`` means the default policy); ``degrade`` controls
    whether exhausted retries demote a worker to a spill shard
    (see the module docstring) or fail the job.  Both are ignored for
    file stores.

    ``clock`` is the wall-clock source for the manifest's
    ``generated_unix`` stamp (default :func:`time.time`), injectable
    for the same reason :class:`RetryPolicy` takes one: tests pin it
    and get a fully deterministic manifest without normalization.  The
    stamp is run metadata either way -- :func:`normalized_manifest`
    strips it before any byte-for-byte comparison.
    """
    if clock is None:
        clock = time.time
    if jobs < 1:
        raise CampaignSpecError("jobs must be >= 1")
    store = store_path if store_path is not None else spec.store
    service = store is not None and is_service_url(str(store))
    policy = retry if retry is not None else RetryPolicy()
    degrade_active = service and degrade and not store_readonly
    if shard:
        if store is None:
            raise CampaignSpecError("shard mode needs --store")
        if store_readonly:
            raise CampaignSpecError(
                "shard mode writes shards; it cannot run --store-readonly"
            )
        if service:
            raise CampaignSpecError(
                "shard mode needs a file store; a verdict service"
                " (repro+unix://) already serializes concurrent writers"
            )

    def shard_path(index: int) -> str:
        return f"{store}.shard-{index}"

    def spill_path(index: int) -> str:
        # Next to the socket, not the daemon's store file: the client
        # may not know (or share a filesystem view of) the store path,
        # but the socket path is its own connection target.
        return f"{service_socket_path(str(store))}.spill-{index}"

    requests = [
        _JobRequest(
            index=index,
            test_text=test,
            backend=backend,
            size=size,
            faults=spec.faults,
            store_path=shard_path(index) if shard else (
                str(store) if store is not None else None
            ),
            store_readonly=store_readonly,
            retry=policy if service else None,
            degrade=degrade_active,
            spill_path=spill_path(index) if degrade_active else None,
        )
        for index, (backend, size, test) in enumerate(spec.jobs())
    ]

    started_campaign = time.perf_counter()
    server_store: Optional[str] = None
    if service:
        # No client-side SQLite open: just handshake with the daemon so
        # an unreachable (or foreign) socket fails the campaign up
        # front instead of failing every job.  The probe always rides
        # the *default* retry policy -- a retries-disabled campaign
        # must still start through a flaky transport -- and the
        # handshake tells us where the daemon's store file lives, the
        # fallback merge target if the daemon never comes back.
        probe = ServiceStore(str(store))
        try:
            hello = probe.ping()
            server_store = hello.get("store")
        finally:
            probe.close()
    elif store is not None and not store_readonly:
        # Pre-create the (shared store / shard-merge target) schema in
        # the parent: workers then only ever open an existing store,
        # and a store problem fails the campaign up front instead of
        # failing every job.
        FaultDictionaryStore(store).close()
    records: List[Optional[Dict[str, Any]]] = [None] * len(requests)
    done = 0

    def record_completion(index: int, record: Dict[str, Any]) -> None:
        nonlocal done
        records[index] = record
        done += 1
        if progress is not None:
            progress(done, len(requests), record)

    if jobs == 1 or len(requests) <= 1:
        for request in requests:
            record_completion(request.index, _execute_job(request))
    else:
        # A hard worker death (SIGKILL, OOM, segfault) marks the whole
        # pool broken: every live future fails with BrokenProcessPool,
        # and submit/wait themselves can raise it if the break lands
        # while jobs are still being scheduled.  None of that may cost
        # the manifest -- completed records are harvested, every
        # unfinished job is written down as failed, the campaign
        # returns (and the CLI exits 1 via totals["failed"]).
        pool_break: Optional[BaseException] = None
        futures: Dict[Any, _JobRequest] = {}
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(requests)),
            mp_context=_pool_context(),
        ) as pool:
            try:
                for request in requests:
                    futures[pool.submit(_execute_job, request)] = request
                pending = set(futures)
                while pending:
                    finished, pending = wait(
                        pending, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        request = futures[future]
                        try:
                            record = future.result()
                        except BaseException as error:  # hard worker crash
                            record = _error_record(request, error)
                        record_completion(request.index, record)
            except BrokenProcessPool as error:
                pool_break = error
                # Harvest whatever still finished cleanly before the
                # pool died: those verdicts are real and already in
                # the store; their records must not be lost.
                for future, request in futures.items():
                    if records[request.index] is not None \
                            or not future.done():
                        continue
                    try:
                        record = future.result()
                    except BaseException as inner:
                        record = _error_record(request, inner)
                    record_completion(request.index, record)
        if pool_break is not None:
            for request in requests:
                if records[request.index] is None:
                    record_completion(
                        request.index, _error_record(request, pool_break)
                    )

    merge_stats: Optional[Dict[str, int]] = None
    if shard:
        merge_stats = _merge_shards(
            store, [shard_path(request.index) for request in requests]
        )
    spill_merge: Optional[Dict[str, Any]] = None
    if degrade_active:
        spill_merge = _merge_spills(
            str(store),
            server_store,
            [spill_path(request.index) for request in requests],
            RetryPolicy(),
        )

    ordered = [record for record in records if record is not None]
    results = [
        record["result"] for record in ordered
        if record.get("result") is not None
    ]
    job_rows = []
    for record in ordered:
        job_rows.append({k: v for k, v in record.items() if k != "result"})
    simulated = sum(
        sum(record["served"].values()) for record in ordered
    )
    store_hits = sum(
        (record.get("store") or {}).get("hits", 0) for record in ordered
    )
    failed = sum(1 for record in ordered if record["error"] is not None)
    degraded = sum(1 for record in ordered if record.get("degraded"))
    mode = (
        "sequential" if jobs == 1
        else ("sharded" if shard else "shared")
    )
    return {
        "schema": MANIFEST_SCHEMA,
        "campaign": spec.name,
        "generated_unix": round(clock(), 3),
        # JSON-native echo of the spec (tuples become lists).
        "spec": {
            field: list(value) if isinstance(value, tuple) else value
            for field, value in asdict(spec).items()
        },
        "store": str(store) if store is not None else None,
        "store_readonly": store_readonly,
        "parallel": {
            "jobs": jobs,
            "mode": mode,
            "shard_merge": merge_stats,
        },
        "resilience": {
            "retry": policy.knobs() if service else None,
            "degrade": degrade_active,
            "spill_merge": spill_merge,
        },
        # The campaign-wide registry view: every job's snapshot folded
        # into one (counters add, gauges max, histograms add
        # bucket-wise).  By construction its route counters reconcile
        # with totals["verdicts_simulated"] and its cache counters
        # with the per-job cache blocks.
        "telemetry": {
            "metrics": merge_snapshots(
                record["telemetry"]["metrics"]
                for record in ordered
                if record.get("telemetry")
            ),
        },
        "jobs": job_rows,
        "results": results,
        "totals": {
            "jobs": len(job_rows),
            "results": len(results),
            "failed": failed,
            "degraded": degraded,
            "verdicts_simulated": simulated,
            "verdicts_from_store": store_hits,
            "seconds": time.perf_counter() - started_campaign,
        },
    }


def _merge_shards(
    store: str, shard_paths: List[str]
) -> Dict[str, int]:
    """Fold every per-job shard into the main store, then delete them.

    One atomic transaction per shard; a shard a failed job never
    created is simply skipped.  The shards' WAL/SHM droppings go with
    them.
    """
    totals = {"shards": 0, "source_rows": 0, "inserted": 0, "merged": 0}
    main = FaultDictionaryStore(store)
    try:
        for shard in shard_paths:
            path = Path(shard)
            if not path.exists():
                continue
            stats = main.merge_from(path)
            totals["shards"] += 1
            for field in ("source_rows", "inserted", "merged"):
                totals[field] += stats[field]
            for dropping in (
                path,
                path.with_name(path.name + "-wal"),
                path.with_name(path.name + "-shm"),
            ):
                try:
                    dropping.unlink()
                except FileNotFoundError:
                    pass
    finally:
        main.close()
    return totals


def _merge_spills(
    store_url: str,
    server_store: Optional[str],
    spill_paths: List[str],
    retry: RetryPolicy,
) -> Dict[str, Any]:
    """Fold surviving degraded-mode spills back into the dictionary.

    A spill exists only where a worker outlived the daemon, so the
    preferred route -- the daemon's ``merge`` op, which needs the
    daemon back up -- may well be gone too.  The fallback merges
    directly into the server's store file (learned from the campaign's
    opening handshake; over a Unix socket that file is same-host by
    construction).  Merged spills are deleted with their WAL/SHM
    droppings; anything unmergeable is *kept* on disk and listed under
    ``"unmerged"`` so the verdicts are never silently dropped.
    """
    totals: Dict[str, Any] = {
        "spills": 0, "source_rows": 0, "inserted": 0, "merged": 0,
        "via": None, "unmerged": [],
    }
    existing = [path for path in spill_paths if Path(path).exists()]
    if not existing:
        return totals

    def merge_via_service(path: str) -> Dict[str, int]:
        client = ServiceStore(store_url, retry=retry)
        try:
            return client.merge_from(path)
        finally:
            client.close()

    def merge_via_file(path: str) -> Dict[str, int]:
        if server_store is None:
            raise StoreError(
                "no server store path known for the fallback merge"
            )
        main = FaultDictionaryStore(server_store)
        try:
            return main.merge_from(path)
        finally:
            main.close()

    service_alive = True  # until a merge op proves otherwise
    for path in existing:
        stats = None
        routes = [("file", merge_via_file)]
        if service_alive:
            routes.insert(0, ("service", merge_via_service))
        for via, folder in routes:
            try:
                stats = folder(path)
            except StoreError:
                if via == "service":
                    # Don't pay the retry budget again per spill: a
                    # daemon that just refused the merge is down for
                    # the rest of this (sub-second) merge pass too.
                    service_alive = False
                continue
            totals["via"] = via if totals["via"] in (None, via) else "mixed"
            break
        if stats is None:
            totals["unmerged"].append(path)
            continue
        totals["spills"] += 1
        for field in ("source_rows", "inserted", "merged"):
            totals[field] += stats[field]
        spill = Path(path)
        for dropping in (
            spill,
            spill.with_name(spill.name + "-wal"),
            spill.with_name(spill.name + "-shm"),
        ):
            try:
                dropping.unlink()
            except FileNotFoundError:
                pass
    return totals


# -- manifest tooling -----------------------------------------------------------


def write_manifest(
    manifest: Dict[str, Any], path: Union[str, Path]
) -> Path:
    """Write the manifest JSON (stable key order) and return its path."""
    path = Path(path)
    path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return path


#: Manifest fields that legitimately differ between two runs of the
#: same spec: wall-clock, timestamps, cache/store counters (a
#: parallel run races its jobs, so which job *simulated* a shared
#: verdict and which found it in the store is scheduling-dependent --
#: the verdicts themselves are not) and the whole resilience story
#: (retries taken, degradations, spill merges: infrastructure faults
#: change *where* verdicts land, never *what* they are, so a run
#: through a chaos proxy must normalize identically to a direct one).
#: The telemetry blocks are timing observations over those same
#: scheduling-dependent counters, so they normalize away with them.
_RUN_DEPENDENT_TOP = (
    "generated_unix", "store", "store_readonly", "parallel", "resilience",
    "telemetry",
)
_RUN_DEPENDENT_JOB = (
    "seconds", "cache", "served", "store", "degraded", "attempts", "spill",
    "telemetry",
)
_RUN_DEPENDENT_TOTALS = (
    "seconds", "verdicts_simulated", "verdicts_from_store", "degraded",
)


def normalized_manifest(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """The manifest minus everything scheduling-dependent.

    Two runs of the same spec -- any ``--jobs`` width, shared or
    sharded store, warm or cold -- must normalize byte-identically
    (``json.dumps(..., sort_keys=True)``); CI's ``campaign-fanout`` job
    enforces exactly that.  What survives is the determinism contract:
    the job list in job order, every verdict count, every missed-case
    list, every coverage figure and every error.
    """
    normalized = copy.deepcopy(manifest)
    for field in _RUN_DEPENDENT_TOP:
        normalized.pop(field, None)
    for job in normalized.get("jobs", ()):
        for field in _RUN_DEPENDENT_JOB:
            job.pop(field, None)
    totals = normalized.get("totals", {})
    for field in _RUN_DEPENDENT_TOTALS:
        totals.pop(field, None)
    return normalized


def summarize(manifest: Dict[str, Any]) -> str:
    """The human-readable campaign summary the CLI prints."""
    lines = []
    totals = manifest["totals"]
    parallel = manifest.get("parallel", {})
    degraded_total = totals.get("degraded", 0)
    degraded_text = (
        f" {degraded_total} degraded," if degraded_total else ""
    )
    lines.append(
        f"campaign '{manifest['campaign']}':"
        f" {totals['jobs']} jobs ({parallel.get('mode', 'sequential')},"
        f" {parallel.get('jobs', 1)} workers),"
        f" {totals['failed']} failed,{degraded_text}"
        f" {totals['verdicts_simulated']} verdicts simulated,"
        f" {totals['verdicts_from_store']} from the store,"
        f" {totals['seconds']:.2f}s"
    )
    for job in manifest["jobs"]:
        if job["error"] is not None:
            lines.append(
                f"  job [{job['backend']} @ size {job['size']}]"
                f" {job['test']:12s} FAILED: {job['error']}"
            )
            continue
        store = job.get("store")
        store_text = (
            f"  store {store['hits']}h/{store['writes']}w"
            if store is not None
            else ""
        )
        degraded_text = (
            f"  DEGRADED after {job['attempts']} retries"
            if job.get("degraded")
            else ""
        )
        lines.append(
            f"  job [{job['backend']} @ size {job['size']}]"
            f" {job['test']:12s}"
            f" {job['fault_cases']} cases {job['seconds'] * 1e3:8.1f} ms"
            f"{store_text}{degraded_text}"
        )
    for row in manifest["results"]:
        lines.append(
            f"  {row['test']:12s} size {row['size']}"
            f" {row['backend']:12s}"
            f" {row['detected']:4d}/{row['fault_cases']:<4d}"
            f" {row['coverage'] * 100:5.1f}%"
        )
    return "\n".join(lines)
