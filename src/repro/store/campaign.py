"""Declarative simulation campaigns over the persistent store.

A *campaign* is the production shape of the repository's workloads: a
batch job that sweeps ``tests x fault models x sizes x backends``
through the simulation kernel, deduplicating every verdict through the
persistent fault-dictionary store (two jobs probing the same (test,
case, size) pair simulate it once, ever -- even across campaigns and
processes) and emitting a machine-readable *results manifest* that
downstream tooling (CI artifact diffing, dashboards, regression bots)
can consume without scraping CLI output.

The spec is plain JSON (see ``examples/campaign_table3.json``)::

    {
      "name": "table3-sweep",
      "tests": ["MATS", "MarchC-", "{up(w0); up(r0,w1); down(r1)}"],
      "faults": ["SAF", "TF", "ADF"],
      "sizes": [3, 4],
      "backends": ["bitparallel"]
    }

``tests`` accepts catalog names or literal March notation; ``faults``
are fault-model names; ``sizes``/``backends`` default to ``[3]`` /
``["bitparallel"]``.  An optional ``"store"`` field names the
dictionary file (the CLI ``--store`` flag overrides it).

This module depends on :mod:`repro.kernel`, which imports the store
package at startup -- import it as ``repro.store.campaign`` directly,
never from ``repro.store``'s namespace.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from itertools import product
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..faults.faultlist import FaultList
from ..faults.library import MODEL_REGISTRY
from ..kernel import BACKENDS, SimulationKernel
from ..march.catalog import by_name
from ..march.test import MarchTest, parse_march

#: Generation of the manifest payload layout.
MANIFEST_SCHEMA = 1

DEFAULT_MANIFEST_NAME = "campaign_manifest.json"


class CampaignSpecError(ValueError):
    """The campaign spec is malformed."""


@dataclass(frozen=True)
class CampaignSpec:
    """A validated, immutable campaign description."""

    name: str
    tests: Tuple[str, ...]
    faults: Tuple[str, ...]
    sizes: Tuple[int, ...] = (3,)
    backends: Tuple[str, ...] = ("bitparallel",)
    store: Optional[str] = None

    _KNOWN_KEYS = frozenset(
        {"name", "tests", "faults", "sizes", "backends", "store"}
    )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise CampaignSpecError("campaign spec must be a JSON object")
        unknown = set(data) - cls._KNOWN_KEYS
        if unknown:
            raise CampaignSpecError(
                f"unknown campaign spec keys: {sorted(unknown)};"
                f" known: {sorted(cls._KNOWN_KEYS)}"
            )
        try:
            tests = tuple(data["tests"])
            faults = tuple(data["faults"])
        except KeyError as missing:
            raise CampaignSpecError(
                f"campaign spec requires the {missing} key"
            ) from None
        if not tests or not all(isinstance(t, str) for t in tests):
            raise CampaignSpecError("'tests' must be non-empty strings")
        if not faults:
            raise CampaignSpecError("'faults' must name at least one model")
        for model in faults:
            if not isinstance(model, str):
                raise CampaignSpecError(
                    f"fault model names must be strings, got {model!r}"
                )
            if model.upper() not in MODEL_REGISTRY:
                raise CampaignSpecError(
                    f"unknown fault model {model!r};"
                    f" known: {sorted(MODEL_REGISTRY)}"
                )
        sizes = tuple(data.get("sizes", (3,)))
        if not sizes or not all(
            isinstance(s, int) and not isinstance(s, bool) and s > 0
            for s in sizes
        ):
            raise CampaignSpecError("'sizes' must be positive integers")
        backends = tuple(data.get("backends", ("bitparallel",)))
        for backend in backends:
            if backend not in BACKENDS:
                raise CampaignSpecError(
                    f"unknown backend {backend!r}; known: {sorted(BACKENDS)}"
                )
        store = data.get("store")
        return cls(
            name=str(data.get("name", "campaign")),
            tests=tests,
            faults=tuple(f.upper() for f in faults),
            sizes=sizes,
            backends=backends,
            store=str(store) if store is not None else None,
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignSpec":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except OSError as error:
            raise CampaignSpecError(
                f"cannot read campaign spec {path}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise CampaignSpecError(
                f"campaign spec {path} is not valid JSON: {error}"
            ) from error
        return cls.from_dict(data)

    # -- resolution -------------------------------------------------------------

    def resolved_tests(self) -> List[MarchTest]:
        """Catalog names or literal March notation, in spec order."""
        resolved = []
        for text in self.tests:
            try:
                resolved.append(by_name(text))
            except KeyError:
                resolved.append(parse_march(text, name=text))
        return resolved

    def fault_list(self) -> FaultList:
        return FaultList.from_names(*self.faults)

    def jobs(self) -> Iterator[Tuple[str, int]]:
        """(backend, size) pairs, backends outermost.

        Sizes vary fastest so one backend finishes populating the
        store for every size before the next backend starts -- which
        makes the later backends' jobs pure dictionary lookups.
        """
        return product(self.backends, self.sizes)


def run_campaign(
    spec: CampaignSpec,
    store_path: Optional[str] = None,
    store_readonly: bool = False,
) -> Dict[str, Any]:
    """Execute every job of ``spec``; return the results manifest.

    Each (backend, size) job runs on a **fresh** kernel -- cold LRU,
    its own store connection -- so all cross-job deduplication flows
    through the persistent store, exactly like separate CLI
    invocations would.  Verdict identity across backends is the
    kernel's equivalence contract, so sharing rows between them is
    sound.
    """
    tests = spec.resolved_tests()
    faults = spec.fault_list()
    store = store_path if store_path is not None else spec.store

    jobs: List[Dict[str, Any]] = []
    results: List[Dict[str, Any]] = []
    started_campaign = time.perf_counter()
    for backend, size in spec.jobs():
        kernel = SimulationKernel(
            backend=backend, store=store, store_readonly=store_readonly
        )
        try:
            cases = faults.instances(size)
            started = time.perf_counter()
            reports = kernel.simulate_many(tests, cases, size)
            seconds = time.perf_counter() - started
            for test, report in zip(tests, reports):
                results.append({
                    "test": test.name or str(test),
                    "notation": str(test),
                    "size": size,
                    "backend": backend,
                    "fault_cases": len(cases),
                    "detected": len(report.detected),
                    "missed": list(report.missed),
                    "coverage": report.coverage,
                })
            job: Dict[str, Any] = {
                "backend": backend,
                "size": size,
                "fault_cases": len(cases),
                "seconds": seconds,
                "cache": {
                    "hits": kernel.stats.hits,
                    "misses": kernel.stats.misses,
                },
                "served": dict(
                    getattr(kernel.backend, "served", None) or {}
                ),
            }
            if kernel.store is not None:
                job["store"] = {
                    "hits": kernel.store.stats.hits,
                    "misses": kernel.store.stats.misses,
                    "writes": kernel.store.stats.writes,
                    "skipped_writes": kernel.store.stats.skipped_writes,
                }
            jobs.append(job)
        finally:
            kernel.close()

    simulated = sum(sum(job["served"].values()) for job in jobs)
    store_hits = sum(job.get("store", {}).get("hits", 0) for job in jobs)
    return {
        "schema": MANIFEST_SCHEMA,
        "campaign": spec.name,
        "generated_unix": round(time.time(), 3),
        # JSON-native echo of the spec (tuples become lists).
        "spec": {
            field: list(value) if isinstance(value, tuple) else value
            for field, value in asdict(spec).items()
        },
        "store": str(store) if store is not None else None,
        "store_readonly": store_readonly,
        "jobs": jobs,
        "results": results,
        "totals": {
            "jobs": len(jobs),
            "results": len(results),
            "verdicts_simulated": simulated,
            "verdicts_from_store": store_hits,
            "seconds": time.perf_counter() - started_campaign,
        },
    }


def write_manifest(
    manifest: Dict[str, Any], path: Union[str, Path]
) -> Path:
    """Write the manifest JSON (stable key order) and return its path."""
    path = Path(path)
    path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return path


def summarize(manifest: Dict[str, Any]) -> str:
    """The human-readable campaign summary the CLI prints."""
    lines = []
    totals = manifest["totals"]
    lines.append(
        f"campaign '{manifest['campaign']}':"
        f" {totals['jobs']} jobs, {totals['results']} results,"
        f" {totals['verdicts_simulated']} verdicts simulated,"
        f" {totals['verdicts_from_store']} from the store,"
        f" {totals['seconds']:.2f}s"
    )
    for job in manifest["jobs"]:
        store = job.get("store")
        store_text = (
            f"  store {store['hits']}h/{store['writes']}w"
            if store is not None
            else ""
        )
        lines.append(
            f"  job [{job['backend']} @ size {job['size']}]"
            f" {job['fault_cases']} cases {job['seconds'] * 1e3:8.1f} ms"
            f"{store_text}"
        )
    for row in manifest["results"]:
        lines.append(
            f"  {row['test']:12s} size {row['size']}"
            f" {row['backend']:12s}"
            f" {row['detected']:4d}/{row['fault_cases']:<4d}"
            f" {row['coverage'] * 100:5.1f}%"
        )
    return "\n".join(lines)
