"""Resilience primitives for store clients: retry, backoff, spill.

A long campaign only pays off if it survives the infrastructure
faulting underneath it: a verdict-service daemon restarting, a socket
reset by a dying peer, a read that times out.  PR 5's client handled
exactly one such event per request (reconnect once, then fail); this
module generalizes that into an explicit, injectable policy plus a
degraded execution mode, shared by every store-shaped client:

* :class:`TransientStoreError` -- the marker type for failures that
  are worth retrying (nothing answered, the connection died, the read
  timed out).  Permanent errors (protocol mismatch, foreign listener,
  a refused request) deliberately do **not** carry it, so they keep
  failing fast no matter how generous the retry budget is.
* :class:`RetryPolicy` -- max attempts, exponential backoff with
  deterministic seeded jitter, a per-request wall-clock deadline, and
  injectable ``clock``/``sleep`` so tests never actually wait.  The
  policy object is immutable and picklable (campaign workers receive
  it across the process boundary).
* :class:`DegradingStore` -- graceful degradation for campaign
  workers: wraps a primary (service) store and, the moment a request
  exhausts its retries, demotes to a private local SQLite *spill
  shard* (the PR 4 shard machinery) so the job keeps simulating with
  full write capture instead of failing.  The campaign runner merges
  surviving spills back into the main dictionary at the end -- zero
  verdicts lost, the job records ``degraded`` instead of an error.

Place in the store stack
------------------------
This module is the **policy layer**: it owns the transient/permanent
failure split the wire protocol commits to (``docs/PROTOCOL.md`` §5)
and the degraded mode the runbook's recovery procedure builds on
(``docs/OPERATIONS.md`` §6).  It sits below
:mod:`repro.store.service` (which subclasses
:class:`TransientStoreError` into its error taxonomy) and imports only
:mod:`repro.store.store` -- no import cycles.
"""

from __future__ import annotations

import random
import threading
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .store import FaultDictionaryStore, StoreError, StoreStats

#: Default retry budget: 5 attempts with 50 ms -> 2 s exponential
#: backoff rides out a daemon restart of a second or two without
#: stalling a genuinely dead socket for more than ~1 s of backoff.
DEFAULT_MAX_ATTEMPTS = 5
DEFAULT_BASE_DELAY = 0.05
DEFAULT_MAX_DELAY = 2.0
DEFAULT_MULTIPLIER = 2.0
DEFAULT_JITTER = 0.25
DEFAULT_DEADLINE = 60.0


class TransientStoreError(StoreError):
    """A store failure worth retrying (and, past the retry budget,
    worth degrading over): nothing answered, the peer went away, the
    request timed out.  Permanent failures raise plain
    :class:`StoreError` (or a subclass) *without* this marker."""


class RetryExhaustedError(StoreError):
    """Every attempt a :class:`RetryPolicy` allowed has failed.

    Carries the bookkeeping a caller needs to degrade or report:
    ``attempts`` tried, ``elapsed`` wall-clock seconds, and the
    ``last_error`` (also chained as ``__cause__``).
    """

    def __init__(
        self,
        message: str,
        attempts: int = 0,
        elapsed: float = 0.0,
        last_error: Optional[BaseException] = None,
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.elapsed = elapsed
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how long) to retry transient store failures.

    ``call(fn)`` runs ``fn`` up to ``max_attempts`` times, sleeping an
    exponentially growing, jittered delay between attempts::

        delay(n) = min(max_delay, base_delay * multiplier**(n-1))
                   +- uniform(jitter * delay)

    The jitter stream is seeded (``seed``), so a policy's backoff
    schedule is fully deterministic -- :meth:`preview` returns it.
    ``deadline`` bounds one request's total wall clock: when the next
    sleep would cross it, the policy gives up early.  ``clock`` and
    ``sleep`` are injectable (default :func:`time.monotonic` /
    :func:`time.sleep`) so tests exercise every schedule without
    actually waiting; leave them ``None`` to keep the policy picklable
    for campaign workers.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    base_delay: float = DEFAULT_BASE_DELAY
    max_delay: float = DEFAULT_MAX_DELAY
    multiplier: float = DEFAULT_MULTIPLIER
    jitter: float = DEFAULT_JITTER
    deadline: Optional[float] = DEFAULT_DEADLINE
    seed: Optional[int] = None
    clock: Optional[Callable[[], float]] = None
    sleep: Optional[Callable[[float], None]] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0 seconds")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be a fraction in [0, 1]")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")

    @classmethod
    def no_retry(cls, **overrides: Any) -> "RetryPolicy":
        """A policy that fails on the first transient error."""
        overrides.setdefault("max_attempts", 1)
        return cls(**overrides)

    def knobs(self) -> Dict[str, Any]:
        """The policy's scalar configuration (manifest/JSON echo)."""
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "multiplier": self.multiplier,
            "jitter": self.jitter,
            "deadline": self.deadline,
            "seed": self.seed,
        }

    # -- backoff schedule --------------------------------------------------------

    def _delay(self, attempt: int, rng: random.Random) -> float:
        delay = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (attempt - 1),
        )
        if self.jitter > 0 and delay > 0:
            span = delay * self.jitter
            delay += rng.uniform(-span, span)
        return max(0.0, delay)

    def preview(self, attempts: Optional[int] = None) -> List[float]:
        """The deterministic sleep schedule between attempts.

        ``attempts`` defaults to ``max_attempts``; a schedule for N
        attempts has N-1 sleeps.  Two policies with equal knobs and
        ``seed`` preview (and execute) identical schedules.
        """
        count = self.max_attempts if attempts is None else attempts
        rng = random.Random(self.seed)
        return [self._delay(attempt, rng) for attempt in range(1, count)]

    # -- execution ---------------------------------------------------------------

    def call(
        self,
        fn: Callable[[], Any],
        transient: Tuple[type, ...] = (TransientStoreError,),
        on_retry: Optional[
            Callable[[int, float, BaseException], None]
        ] = None,
    ) -> Any:
        """Run ``fn``, retrying ``transient`` failures with backoff.

        Anything else ``fn`` raises propagates untouched on the first
        attempt (permanent errors fail fast).  ``on_retry(attempt,
        delay, error)`` fires before each backoff sleep.  Raises
        :class:`RetryExhaustedError` when the budget (attempts or
        deadline) runs out, chaining the last transient error.
        """
        clock = self.clock or time.monotonic
        sleep = self.sleep or time.sleep
        rng = random.Random(self.seed)
        started = clock()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except transient as error:
                elapsed = clock() - started
                delay = self._delay(attempt, rng)
                out_of_attempts = attempt >= self.max_attempts
                out_of_time = (
                    self.deadline is not None
                    and elapsed + delay > self.deadline
                )
                if out_of_attempts or out_of_time:
                    budget = (
                        f"{attempt} attempt(s)" if out_of_attempts
                        else f"the {self.deadline:.1f}s deadline"
                    )
                    raise RetryExhaustedError(
                        f"retries exhausted after {budget}"
                        f" ({elapsed:.2f}s elapsed): {error}",
                        attempts=attempt,
                        elapsed=elapsed,
                        last_error=error,
                    ) from error
                if on_retry is not None:
                    on_retry(attempt, delay, error)
                sleep(delay)


# -- graceful degradation --------------------------------------------------------


class DegradingStore:
    """A store client that spills locally when its primary dies.

    Wraps a primary store (in practice a retrying
    :class:`~repro.store.service.ServiceStore`) behind the usual
    lookup/write surface.  While the primary answers, every call is a
    pass-through.  The first call whose retries are exhausted (any
    :class:`TransientStoreError`) *demotes* this store: a private
    local :class:`FaultDictionaryStore` opens at ``spill_path`` and
    serves all further traffic.  The failed call is replayed against
    the spill, so not even the triggering batch is lost.

    Demotion trades cross-worker deduplication for survival: spill
    reads miss whatever the dead service knew, so the worker
    re-simulates -- correctly, just redundantly -- and captures every
    verdict in the spill.  The campaign runner folds surviving spills
    back into the main dictionary afterwards
    (:meth:`FaultDictionaryStore.merge_from`), which is why a degraded
    job reports ``degraded`` instead of an error and loses nothing.

    Deliberately one-way: a daemon that comes back mid-job is picked
    up by the *next* job's fresh client; flapping between tiers inside
    one job would split its writes across two stores for no benefit.
    """

    def __init__(
        self,
        primary: Any,
        spill_path: Union[str, Path],
    ) -> None:
        self.primary = primary
        self.spill_path = Path(spill_path)
        self.degraded = False
        self.readonly = bool(getattr(primary, "readonly", False))
        self._spill: Optional[FaultDictionaryStore] = None
        self._lock = threading.Lock()

    # -- demotion ----------------------------------------------------------------

    def _demote(self, error: BaseException) -> FaultDictionaryStore:
        with self._lock:
            if self._spill is None:
                self._spill = FaultDictionaryStore(
                    self.spill_path, readonly=self.readonly
                )
                self.degraded = True
                warnings.warn(
                    f"store unreachable ({error}); degrading to local"
                    f" spill shard {self.spill_path} -- simulation"
                    " continues, verdicts will be merged back",
                    RuntimeWarning,
                    stacklevel=4,
                )
            return self._spill

    def _call(self, op: str, *args: Any) -> Any:
        # repro-lint: disable-scope=lock-discipline -- `degraded` is a
        # one-way latch set under _lock in _demote and never reverted; a
        # stale False here just retries the primary once more, and
        # _demote re-checks under the lock before creating the spill.
        if not self.degraded:
            try:
                return getattr(self.primary, op)(*args)
            except TransientStoreError as error:
                self._demote(error)
        return getattr(self._spill, op)(*args)

    # -- store surface -----------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        return self._call("get", key, default)

    def get_many(self, keys: Iterable[Any]) -> Dict[Any, Any]:
        return self._call("get_many", list(keys))

    def put(self, key: Any, value: Any) -> None:
        self._call("put", key, value)

    def put_many(self, pairs: Sequence[Tuple[Any, Any]]) -> None:
        self._call("put_many", list(pairs))

    def __contains__(self, key: Any) -> bool:
        return self._call("__contains__", key)

    @property
    def stats(self) -> StoreStats:
        """Combined counters of both tiers (reads are snapshots)."""
        merged = StoreStats()
        # A racing demotion only means the spill's zero counters show
        # up one call later.
        # repro-lint: disable=lock-discipline -- snapshot read of latch
        for tier in (self.primary, self._spill):
            tier_stats = getattr(tier, "stats", None)
            if tier_stats is None:
                continue
            merged.hits += tier_stats.hits
            merged.misses += tier_stats.misses
            merged.writes += tier_stats.writes
            merged.skipped_writes += tier_stats.skipped_writes
        return merged

    # -- introspection -----------------------------------------------------------

    def resilience(self) -> Dict[str, Any]:
        """What the campaign manifest records per job."""
        # repro-lint: disable-scope=lock-discipline -- manifest snapshot
        # of the one-way `degraded` latch, taken after the job finished;
        # no demotion can race it
        return {
            "attempts": int(getattr(self.primary, "retries", 0)),
            "degraded": self.degraded,
            "spill": str(self.spill_path) if self.degraded else None,
        }

    def describe(self) -> str:
        # repro-lint: disable=lock-discipline -- display-only latch read
        if self.degraded:
            return (
                f"spill [{self.spill_path.name} DEGRADED]:"
                f" {self.stats}"
            )
        return self.primary.describe()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Close both tiers; the spill checkpoint must run even when
        dropping the dead primary's socket fails."""
        try:
            self.primary.close()
        finally:
            with self._lock:
                spill, self._spill = self._spill, None
            if spill is not None:
                spill.close()

    def __enter__(self) -> "DegradingStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
