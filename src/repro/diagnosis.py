"""Fault diagnosis by output tracing (the paper's [6] direction).

A March test does more than pass/fail: the *syndrome* — which verifying
reads failed, where, and what they returned — narrows down which
physical fault is present.  This module builds a fault dictionary by
simulating every candidate fault case and matching observed syndromes
against it.

Diagnosis uses one concrete realization of the test (ANY orders
resolved ascending) and the first behavioural variant of each case:
a dictionary describes a deterministic test program on actual hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .faults.faultlist import FaultList
from .faults.instances import FaultCase
from .kernel import SimulationKernel, get_default_kernel
from .kernel.kernel import Failure, Syndrome
from .march.test import MarchTest
from .memory.array import MemoryArray

__all__ = [
    "Failure",
    "Syndrome",
    "FaultDictionary",
    "syndrome_of",
    "build_dictionary",
    "build_dictionary_for",
    "diagnose_memory",
]


def syndrome_of(
    test: MarchTest,
    make_instance,
    size: int,
    kernel: Optional[SimulationKernel] = None,
) -> Syndrome:
    """The failing-read signature of one fault instance."""
    return (kernel or get_default_kernel()).syndrome_of(
        test, make_instance, size
    )


@dataclass
class FaultDictionary:
    """Syndrome -> candidate fault case names."""

    test: MarchTest
    size: int
    entries: Dict[Syndrome, List[str]] = field(default_factory=dict)

    @property
    def syndromes(self) -> int:
        return len(self.entries)

    @property
    def case_count(self) -> int:
        return sum(len(names) for names in self.entries.values())

    def diagnose(self, syndrome: Syndrome) -> Tuple[str, ...]:
        """Candidate faults whose signature matches exactly."""
        return tuple(self.entries.get(frozenset(syndrome), ()))

    def resolution(self) -> float:
        """Fraction of detectable cases with a unique syndrome."""
        detectable = [
            names for syndrome, names in self.entries.items() if syndrome
        ]
        total = sum(len(names) for names in detectable)
        if total == 0:
            return 1.0
        unique = sum(1 for names in detectable if len(names) == 1)
        return unique / total

    def undetected_cases(self) -> Tuple[str, ...]:
        """Cases whose syndrome is empty (the test misses them)."""
        return tuple(self.entries.get(frozenset(), ()))


def build_dictionary(
    test: MarchTest,
    cases: Sequence[FaultCase],
    size: int = 4,
    kernel: Optional[SimulationKernel] = None,
) -> FaultDictionary:
    """Simulate every case and index it by syndrome.

    Syndromes come from the kernel's cached ``"syn"`` domain, so
    rebuilding a dictionary (or building it for overlapping fault
    lists) reuses prior simulation.
    """
    kernel = kernel or get_default_kernel()
    dictionary = FaultDictionary(test, size)
    for fault_case in cases:
        signature = kernel.syndrome(test, fault_case, size)
        dictionary.entries.setdefault(signature, []).append(fault_case.name)
    return dictionary


def build_dictionary_for(
    test: MarchTest,
    faults: FaultList,
    size: int = 4,
    kernel: Optional[SimulationKernel] = None,
) -> FaultDictionary:
    return build_dictionary(test, faults.instances(size), size, kernel)


def diagnose_memory(
    test: MarchTest,
    memory: MemoryArray,
    dictionary: FaultDictionary,
    kernel: Optional[SimulationKernel] = None,
) -> Tuple[str, ...]:
    """Run the dictionary's test on a (possibly faulty) memory and
    return the matching candidates."""
    run = (kernel or get_default_kernel()).run_concrete(test, memory)
    syndrome = frozenset(
        (r.element_index, r.op_index, r.address, r.actual)
        for r in run.reads
        if r.mismatch
    )
    return dictionary.diagnose(syndrome)
