"""Word-oriented memory testing (data backgrounds).

The paper's model and Table 3 target bit-oriented memories.  Real RAMs
read and write w-bit words; the standard extension (van de Goor) runs a
bit-oriented March test once per *data background*, replacing ``w0/r0``
with the background word and ``w1/r1`` with its complement.  A set of
``ceil(log2 w) + 1`` backgrounds distinguishes every pair of bits, so
intra-word coupling faults become visible.

This module provides:

* :func:`data_backgrounds` -- the standard background set;
* :class:`WordMemoryArray` -- an n-word, w-bit memory backed by the
  bit-level :class:`~repro.memory.array.MemoryArray`, so every
  behavioural fault instance of :mod:`repro.faults.instances` can be
  injected at bit granularity (including *intra-word* placements);
* :func:`expand_march` -- a bit-oriented March test expanded over a
  background set;
* :func:`run_word_march` / :func:`detects_case` -- execution and
  worst-case detection on word memories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .march.element import DelayElement, MarchElement
from .march.test import MarchTest
from .memory.array import MemoryArray, NullFaultInstance


def data_backgrounds(width: int) -> Tuple[Tuple[int, ...], ...]:
    """The standard ``ceil(log2 w) + 1`` data backgrounds.

    Background 0 is solid zeros; background k alternates in runs of
    ``2**(k-1)`` (checkerboard, double stripes, ...).  For every pair of
    bit positions some background assigns them different values --
    the property intra-word fault detection rests on.

    >>> data_backgrounds(4)
    ((0, 0, 0, 0), (0, 1, 0, 1), (0, 0, 1, 1))
    """
    if width <= 0:
        raise ValueError("word width must be positive")
    count = max(0, math.ceil(math.log2(width))) + 1
    backgrounds = [tuple(0 for _ in range(width))]
    for k in range(1, count):
        run = 1 << (k - 1)
        backgrounds.append(
            tuple((bit // run) % 2 for bit in range(width))
        )
    return tuple(backgrounds)


def distinguishes_all_pairs(
    backgrounds: Sequence[Sequence[int]], width: int
) -> bool:
    """True when every bit pair differs under some background."""
    for a in range(width):
        for b in range(a + 1, width):
            if not any(bg[a] != bg[b] for bg in backgrounds):
                return False
    return True


def complement(background: Sequence[int]) -> Tuple[int, ...]:
    return tuple(1 - bit for bit in background)


@dataclass
class WordMemoryArray:
    """An n-word by w-bit memory over a bit-level backing array.

    Bit ``b`` of word ``a`` lives at bit-address ``a * width + b``, so
    any bit-level fault instance (stuck-at, coupling across or within
    words, decoder faults on the *bit* array) can be injected.
    """

    words: int
    width: int
    fault: object = None

    def __post_init__(self) -> None:
        if self.words <= 0 or self.width <= 0:
            raise ValueError("words and width must be positive")
        fault = self.fault if self.fault is not None else NullFaultInstance()
        self.bits = MemoryArray(self.words * self.width, fault=fault)

    def bit_address(self, word: int, bit: int) -> int:
        if not 0 <= word < self.words:
            raise IndexError(f"word {word} out of range")
        if not 0 <= bit < self.width:
            raise IndexError(f"bit {bit} out of range")
        return word * self.width + bit

    def write_word(self, word: int, value: Sequence[int]) -> None:
        if len(value) != self.width:
            raise ValueError("value width mismatch")
        for bit, bit_value in enumerate(value):
            self.bits.write(self.bit_address(word, bit), bit_value)

    def read_word(self, word: int) -> Tuple[object, ...]:
        return tuple(
            self.bits.read(self.bit_address(word, bit))
            for bit in range(self.width)
        )

    def wait(self) -> None:
        self.bits.wait()


@dataclass(frozen=True)
class WordReadRecord:
    """One word read observation."""

    background_index: int
    element_index: int
    op_index: int
    word: int
    expected: Tuple[int, ...]
    actual: Tuple[object, ...]

    @property
    def mismatch(self) -> bool:
        return any(
            a in (0, 1) and a != e for a, e in zip(self.actual, self.expected)
        )


def run_word_march(
    test: MarchTest,
    memory: WordMemoryArray,
    background: Sequence[int],
    background_index: int = 0,
) -> List[WordReadRecord]:
    """Execute a bit-oriented March test at word granularity.

    ``w0``/``r0`` operate with the background word, ``w1``/``r1`` with
    its complement, per the standard word-oriented expansion.
    """
    zero = tuple(background)
    one = complement(zero)
    records: List[WordReadRecord] = []
    for element_index, element in enumerate(test.elements):
        if isinstance(element, DelayElement):
            memory.wait()
            continue
        assert isinstance(element, MarchElement)
        for word in element.order.addresses(memory.words):
            for op_index, op in enumerate(element.ops):
                value = one if op.value == 1 else zero
                if op.is_write:
                    memory.write_word(word, value)
                    continue
                actual = memory.read_word(word)
                if op.value is None:
                    continue
                records.append(
                    WordReadRecord(
                        background_index, element_index, op_index,
                        word, value, actual,
                    )
                )
    return records


def expand_march(
    test: MarchTest, width: int
) -> Tuple[Tuple[Tuple[int, ...], MarchTest], ...]:
    """The word-oriented expansion: one pass per data background.

    Returns ``(background, test)`` pairs; the test itself is reused
    unchanged (interpretation happens in :func:`run_word_march`), so the
    total complexity is ``passes * complexity`` word operations.
    """
    return tuple(
        (background, test) for background in data_backgrounds(width)
    )


def detects_case(
    test: MarchTest,
    make_instance: Callable[[], object],
    words: int,
    width: int,
    backgrounds: Optional[Sequence[Sequence[int]]] = None,
) -> bool:
    """Worst-case word-level detection of one fault instance factory.

    The fault must be caught under every address-order realization; the
    background passes run in sequence on a fresh memory per realization
    (as a production test would).
    """
    if backgrounds is None:
        backgrounds = data_backgrounds(width)
    for variant in test.concrete_order_variants():
        memory = WordMemoryArray(words, width, fault=make_instance())
        detected = False
        for index, background in enumerate(backgrounds):
            records = run_word_march(variant, memory, background, index)
            if any(r.mismatch for r in records):
                detected = True
                break
        if not detected:
            return False
    return True


def word_complexity(test: MarchTest, width: int) -> int:
    """Word operations per word over all background passes."""
    return test.complexity * len(data_backgrounds(width))
