"""Two-port (inter-port) weak fault models.

Single-port faults are *strong*: one port's operation suffices.  A
dual-port memory adds *weak* faults that only manifest when both ports
act in the same cycle (Hamdioui & van de Goor's 2PF classification):

* :class:`WeakReadReadDisturb` (wRDF&) -- two simultaneous reads of
  the same cell flip it (and corrupt the returned values); each read
  alone is harmless, so no single-port March test can expose it;
* :class:`WeakWriteLostOnRead` (wTF&) -- a write completes incorrectly
  when the other port reads the *same* cell in the same cycle;
* :class:`WeakPortCoupling` (wCFds&) -- a write on one port disturbs a
  simultaneously *read* other cell (bit-line crosstalk): the victim's
  returned value is inverted while the stored value stays intact.

Every model also behaves perfectly under single-port access -- the
defining property of weak faults.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..faults.instances import FaultCase, case
from .array import CycleResult, DualPortFaultInstance, PortOp, PortOpKind


def _is_read(op: Optional[PortOp], address: int) -> bool:
    return op is not None and op.kind is PortOpKind.READ and op.address == address


def _is_write(op: Optional[PortOp], address: int) -> bool:
    return (
        op is not None and op.kind is PortOpKind.WRITE and op.address == address
    )


class WeakReadReadDisturb(DualPortFaultInstance):
    """wRDF&: simultaneous reads of ``cell`` flip it and return the
    flipped value."""

    def __init__(self, cell: int) -> None:
        self.cell = cell

    def on_cycle(self, memory, op_a, op_b) -> CycleResult:
        if _is_read(op_a, self.cell) and _is_read(op_b, self.cell):
            old = memory.raw[self.cell]
            if old in (0, 1):
                flipped = 1 - int(old)
                memory.raw[self.cell] = flipped
                return CycleResult(flipped, flipped)
        return memory.apply_fault_free(op_a, op_b)


class WeakWriteLostOnRead(DualPortFaultInstance):
    """wTF&: a write to ``cell`` is lost when the other port reads the
    same cell in the same cycle (the read still returns the old value,
    which is also what a fault-free memory may legally return)."""

    def __init__(self, cell: int) -> None:
        self.cell = cell

    def on_cycle(self, memory, op_a, op_b) -> CycleResult:
        pairs = ((op_a, op_b), (op_b, op_a))
        for write, read in pairs:
            if _is_write(write, self.cell) and _is_read(read, self.cell):
                old = memory.raw[self.cell]
                # The write is lost; the colliding read returns the old
                # value (deterministic here, '-' in the good machine).
                if write is op_a:
                    return CycleResult(None, old)
                return CycleResult(old, None)
        return memory.apply_fault_free(op_a, op_b)


class WeakPortCoupling(DualPortFaultInstance):
    """wCFds&: while one port writes ``aggressor``, a simultaneous read
    of ``victim`` on the other port returns the inverted value."""

    def __init__(self, aggressor: int, victim: int) -> None:
        if aggressor == victim:
            raise ValueError("aggressor and victim must differ")
        self.aggressor = aggressor
        self.victim = victim

    def on_cycle(self, memory, op_a, op_b) -> CycleResult:
        result = memory.apply_fault_free(op_a, op_b)
        values = [result.port_a, result.port_b]
        ops = (op_a, op_b)
        for index, op in enumerate(ops):
            other = ops[1 - index]
            if (
                _is_read(op, self.victim)
                and other is not None
                and _is_write(other, self.aggressor)
                and values[index] in (0, 1)
            ):
                values[index] = 1 - int(values[index])
        return CycleResult(values[0], values[1])


def weak_fault_cases(size: int) -> Tuple[FaultCase, ...]:
    """All weak fault cases for an n-cell dual-port memory.

    Port-coupling cases are placed on *adjacent* cell pairs only:
    bit-line crosstalk is a topological phenomenon, and the two-port
    March idiom observes it with fixed-offset companion reads.
    """
    cases = []
    for cell in range(size):
        cases.append(
            case(f"wRR@{cell}", lambda cell=cell: WeakReadReadDisturb(cell))
        )
        cases.append(
            case(f"wWL@{cell}", lambda cell=cell: WeakWriteLostOnRead(cell))
        )
    for aggressor in range(size):
        for victim in (aggressor - 1, aggressor + 1):
            if 0 <= victim < size:
                cases.append(
                    case(
                        f"wPC {aggressor}->{victim}",
                        lambda a=aggressor, v=victim: WeakPortCoupling(a, v),
                    )
                )
    return tuple(cases)
