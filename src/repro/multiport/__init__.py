"""Dual-port memory extension (the paper's stated future work)."""

from .array import (
    CycleResult,
    DualPortFaultInstance,
    DualPortMemoryArray,
    PortOp,
    PortOpKind,
    port_read,
    port_write,
)
from .faults import (
    WeakPortCoupling,
    WeakReadReadDisturb,
    WeakWriteLostOnRead,
    weak_fault_cases,
)
from .generate import Search2PStats, generate_march_2p
from .march2p import (
    MARCH_2PF,
    CompanionRead,
    CycleOp,
    March2PElement,
    March2PTest,
    covers_all_weak_faults,
    detects_weak_case,
    parse_march_2p,
    run_march_2p,
)

__all__ = [
    "Search2PStats",
    "generate_march_2p",
    "CycleResult",
    "DualPortFaultInstance",
    "DualPortMemoryArray",
    "PortOp",
    "PortOpKind",
    "port_read",
    "port_write",
    "WeakPortCoupling",
    "WeakReadReadDisturb",
    "WeakWriteLostOnRead",
    "weak_fault_cases",
    "MARCH_2PF",
    "CompanionRead",
    "CycleOp",
    "March2PElement",
    "March2PTest",
    "covers_all_weak_faults",
    "detects_weak_case",
    "parse_march_2p",
    "run_march_2p",
]
