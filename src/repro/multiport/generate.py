"""Automatic generation of two-port March tests.

The single-port pipeline rests on the two-cell Mealy model; weak
two-port faults need *cycle-level* simultaneity that model does not
express.  Following the paper's own fallback philosophy (bounded search
validated by fault simulation), this generator enumerates the two-port
March grammar in increasing cycle count and returns the first test
whose differential simulation detects every target weak fault case --
i.e. a minimal test within the grammar.

Grammar: an initializing write element, then elements whose port-A ops
follow the classic March shape, where each op may carry a companion
read (same cell or +-1 neighbour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from ..kernel import SimulationKernel, get_default_kernel
from ..march.element import AddressOrder, MarchOp
from .faults import weak_fault_cases
from .march2p import (
    CompanionRead,
    CycleOp,
    March2PElement,
    March2PTest,
)

#: Companion options tried per op (None = port B idle).
COMPANIONS: Tuple[Optional[CompanionRead], ...] = (
    None,
    CompanionRead(0),
    CompanionRead(-1),
    CompanionRead(+1),
)


@dataclass
class Search2PStats:
    candidates_tested: int = 0
    complexity_reached: int = 0


def _port_a_bodies(background: int, max_ops: int):
    """Port-A op sequences: a read of the background, then writes
    (flip or repeat) each optionally re-read."""

    def extend(ops, value, budget):
        yield ops, value
        if budget == 0:
            return
        last = ops[-1]
        for new_value in (1 - value, value):
            if last.is_write and last.value == new_value:
                continue
            yield from extend(
                ops + (MarchOp("w", new_value),), new_value, budget - 1
            )
        if last.is_write or (len(ops) < 2 or not ops[-2].is_read):
            yield from extend(
                ops + (MarchOp("r", value),), value, budget - 1
            )

    first = (MarchOp("r", background),)
    yield from extend(first, background, max_ops - 1)
    # Write-only bodies (needed for pure companion-read elements).
    for value in (1 - background, background):
        yield (MarchOp("w", value),), value


def _annotate(ops: Tuple[MarchOp, ...]) -> Iterator[Tuple[CycleOp, ...]]:
    """All companion annotations of a port-A body.

    Offset companions are only paired with *writes*: every weak fault
    model is either excited by same-cell simultaneity (wRDF&, wTF&) or
    by a write with a neighbour read (wCFds&), so a port-A read never
    benefits from an offset companion.
    """
    if not ops:
        yield ()
        return
    head, tail = ops[0], ops[1:]
    options = COMPANIONS if head.is_write else COMPANIONS[:2]
    for rest in _annotate(tail):
        for companion in options:
            yield (CycleOp(head, companion),) + rest


def _tests(
    max_complexity: int, max_elements: int, stats: Search2PStats
) -> Iterator[March2PTest]:
    def grow(elements, background, budget):
        if elements:
            yield March2PTest(elements)
        if budget == 0 or len(elements) >= max_elements:
            return
        for body, new_background in _port_a_bodies(background, budget):
            for annotated in _annotate(body):
                for order in (AddressOrder.UP, AddressOrder.DOWN):
                    element = March2PElement(order, annotated)
                    yield from grow(
                        elements + (element,),
                        new_background,
                        budget - len(body),
                    )

    for initial_value in (0, 1):
        initial = March2PElement(
            AddressOrder.UP, (CycleOp(MarchOp("w", initial_value)),)
        )
        yield from grow((initial,), initial_value, max_complexity - 1)


def generate_march_2p(
    size: int = 3,
    max_complexity: int = 7,
    max_elements: int = 5,
    budget: Optional[int] = 200000,
    stats: Optional[Search2PStats] = None,
    cases: Optional[Sequence] = None,
    kernel: Optional[SimulationKernel] = None,
) -> Optional[March2PTest]:
    """Minimal two-port March test covering all weak fault cases.

    Iterative deepening on cycle count; ``None`` when the bound or the
    candidate budget is exhausted first.  Differential detection runs
    through the simulation kernel's two-port domain, so verdicts are
    shared with any other consumer probing the same candidates.
    """
    stats = stats if stats is not None else Search2PStats()
    kernel = kernel or get_default_kernel()
    targets = list(cases) if cases is not None else list(weak_fault_cases(size))
    # Fail-fast ordering, updated as cases reject candidates.
    for bound in range(2, max_complexity + 1):
        stats.complexity_reached = bound
        seen = set()
        for candidate in _tests(bound, max_elements, stats):
            if candidate.complexity != bound:
                continue
            key = str(candidate)
            if key in seen:
                continue
            seen.add(key)
            stats.candidates_tested += 1
            if budget is not None and stats.candidates_tested > budget:
                return None
            ok = True
            for position, fault_case in enumerate(targets):
                if not kernel.detects_2p(candidate, fault_case, size):
                    if position:
                        targets.insert(0, targets.pop(position))
                    ok = False
                    break
            if ok:
                return candidate
    return None
