"""Two-port March tests.

A two-port March element applies a sequence of *cycle* operations to
every cell: port A performs the classic cell-relative March operation;
port B may simultaneously read the same cell or a fixed-offset
neighbour (the standard two-port March idiom).  Notation::

    {⇕(w0); ⇑(r0:r, w1:r-1); ⇓(r1:r, w0:r+1); ⇕(r0:r)}

where ``x:y`` pairs port A's op with port B's companion read (``r`` =
same cell, ``r-1``/``r+1`` = neighbour, absent = port B idle).

Detection is judged by differential simulation: the same test runs on
a fault-free and on a faulty dual-port memory; any read returning a
definite value different from the fault-free run detects the fault.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..march.element import AddressOrder, MarchOp, parse_march_op, _ORDER_ALIASES
from .array import DualPortMemoryArray, PortOp, port_read, port_write
from .faults import weak_fault_cases


@dataclass(frozen=True)
class CompanionRead:
    """Port B's simultaneous read, at the current cell or a neighbour."""

    offset: int = 0

    def address(self, current: int, size: int) -> Optional[int]:
        target = current + self.offset
        if 0 <= target < size:
            return target
        return None  # port B idles at the array boundary

    def __str__(self) -> str:
        if self.offset == 0:
            return "r"
        return f"r{self.offset:+d}"


@dataclass(frozen=True)
class CycleOp:
    """One cycle: port A's March op plus an optional companion read."""

    a: MarchOp
    b: Optional[CompanionRead] = None

    def __str__(self) -> str:
        if self.b is None:
            return str(self.a)
        return f"{self.a}:{self.b}"


@dataclass(frozen=True)
class March2PElement:
    order: AddressOrder
    ops: Tuple[CycleOp, ...]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("two-port element needs at least one cycle")

    @property
    def complexity(self) -> int:
        return len(self.ops)

    def with_order(self, order: AddressOrder) -> "March2PElement":
        return March2PElement(order, self.ops)

    def __str__(self) -> str:
        return f"{self.order.symbol}({','.join(str(op) for op in self.ops)})"


@dataclass(frozen=True)
class March2PTest:
    elements: Tuple[March2PElement, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.elements:
            raise ValueError("two-port test needs at least one element")

    @property
    def complexity(self) -> int:
        """Cycles per cell."""
        return sum(e.complexity for e in self.elements)

    @property
    def complexity_label(self) -> str:
        return f"{self.complexity}n"

    def concrete_order_variants(self) -> Tuple["March2PTest", ...]:
        variants: List[Tuple[March2PElement, ...]] = [()]
        for element in self.elements:
            if element.order is AddressOrder.ANY:
                choices = [
                    element.with_order(AddressOrder.UP),
                    element.with_order(AddressOrder.DOWN),
                ]
            else:
                choices = [element]
            variants = [v + (c,) for v in variants for c in choices]
        return tuple(March2PTest(v, self.name) for v in variants)

    def __str__(self) -> str:
        return "{" + "; ".join(str(e) for e in self.elements) + "}"


_CYCLE_RE = re.compile(
    r"^(?P<a>[rw][01]?)(?::(?P<b>r(?P<off>[+-]\d+)?))?$"
)


def parse_cycle(text: str) -> CycleOp:
    match = _CYCLE_RE.match(text.strip())
    if not match:
        raise ValueError(f"malformed two-port cycle {text!r}")
    a = parse_march_op(match.group("a"))
    if match.group("b") is None:
        return CycleOp(a)
    offset = int(match.group("off") or 0)
    return CycleOp(a, CompanionRead(offset))


_ELEMENT_RE = re.compile(
    r"(?P<order>⇑|⇓|⇕|up|down|any)\s*\(\s*(?P<body>[^)]*)\s*\)",
    re.IGNORECASE,
)


def parse_march_2p(text: str, name: str = "") -> March2PTest:
    """Parse the two-port notation shown in the module docstring."""
    elements = []
    for match in _ELEMENT_RE.finditer(text):
        order = _ORDER_ALIASES[match.group("order").lower()]
        ops = tuple(
            parse_cycle(token)
            for token in match.group("body").split(",")
            if token.strip()
        )
        elements.append(March2PElement(order, ops))
    if not elements:
        raise ValueError(f"no two-port elements in {text!r}")
    return March2PTest(tuple(elements), name)


# ---------------------------------------------------------------------------
# Simulation
# ---------------------------------------------------------------------------


def run_march_2p(
    test: March2PTest, memory: DualPortMemoryArray
) -> Tuple[Tuple[object, object], ...]:
    """Execute and collect the ``(port A, port B)`` read values of
    every cycle (None for non-read slots)."""
    observations: List[Tuple[object, object]] = []
    for element in test.elements:
        for address in element.order.addresses(memory.size):
            for cycle in element.ops:
                op_a: PortOp
                if cycle.a.is_write:
                    op_a = port_write(address, cycle.a.value)
                else:
                    op_a = port_read(address, cycle.a.value)
                op_b = None
                if cycle.b is not None:
                    target = cycle.b.address(address, memory.size)
                    if target is not None:
                        op_b = port_read(target)
                result = memory.cycle(op_a, op_b)
                observations.append((result.port_a, result.port_b))
    return tuple(observations)


def detects_weak_case(
    test: March2PTest, fault_case, size: int = 3
) -> bool:
    """Differential worst-case detection of one weak fault case."""
    for variant in test.concrete_order_variants():
        good = run_march_2p(variant, DualPortMemoryArray(size))
        for make_instance in fault_case.variants:
            faulty_memory = DualPortMemoryArray(size, fault=make_instance())
            faulty = run_march_2p(variant, faulty_memory)
            if not _differs(good, faulty):
                return False
    return True


def _differs(good, faulty) -> bool:
    for (ga, gb), (fa, fb) in zip(good, faulty):
        for g, f in ((ga, fa), (gb, fb)):
            if g in (0, 1) and f in (0, 1) and g != f:
                return True
    return False


def covers_all_weak_faults(test: March2PTest, size: int = 3) -> Tuple[bool, List[str]]:
    """Verdict plus the list of missed weak fault cases."""
    missed = [
        fc.name
        for fc in weak_fault_cases(size)
        if not detects_weak_case(test, fc, size)
    ]
    return (not missed, missed)


#: A verified two-port March test covering every weak fault model of
#: :mod:`repro.multiport.faults` (derived with this library and checked
#: by the differential simulator; see tests).  Structure:
#:
#: * ``r0:r`` / ``r1:r`` -- simultaneous same-cell reads fire wRDF&;
#: * ``w1:r`` -- the same-cell read-during-write fires wTF&, exposed by
#:   the following ``r1:r``;
#: * ``w0:r-1`` marching up and ``w1:r+1`` marching down read an
#:   already-visited neighbour during a write, firing wCFds& in both
#:   directions.
MARCH_2PF = parse_march_2p(
    "{any(w0); up(r0:r, w1:r, r1:r); up(w0:r-1); down(w1:r+1)}",
    name="March2PF",
)
