"""Dual-port memory substrate.

The paper's stated future work extends the model to multi-port
memories, whose characteristic faults only appear under *simultaneous*
accesses from different ports.  This module provides the substrate: an
n-cell memory accepting pairs of operations applied in the same cycle,
with the conventional fault-free conflict semantics:

* read + read of the same cell: both return the value;
* read + write of the same cell: indeterminate read (``'-'``), the
  write lands -- well-formed tests avoid this;
* write + write of the same cell: the cell becomes indeterminate when
  the values differ.

Fault instances hook the *cycle* (both port operations together), so
inter-port (weak) faults can react to genuine simultaneity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..memory.state import DASH


class PortOpKind(enum.Enum):
    READ = "r"
    WRITE = "w"


@dataclass(frozen=True)
class PortOp:
    """One port's operation in a cycle."""

    kind: PortOpKind
    address: int
    value: Optional[int] = None  # written value / read-verify value

    def __post_init__(self) -> None:
        if self.kind is PortOpKind.WRITE and self.value not in (0, 1):
            raise ValueError("port write needs a binary value")

    def __str__(self) -> str:
        value = "" if self.value is None else str(self.value)
        return f"{self.kind.value}{value}@{self.address}"


def port_read(address: int, expect: Optional[int] = None) -> PortOp:
    return PortOp(PortOpKind.READ, address, expect)


def port_write(address: int, value: int) -> PortOp:
    return PortOp(PortOpKind.WRITE, address, value)


@dataclass(frozen=True)
class CycleResult:
    """Observed read values of one cycle (None for non-reads)."""

    port_a: Optional[object]
    port_b: Optional[object]


class DualPortFaultInstance:
    """Fault-free cycle semantics; weak-fault instances override."""

    def on_cycle(
        self,
        memory: "DualPortMemoryArray",
        op_a: Optional[PortOp],
        op_b: Optional[PortOp],
    ) -> CycleResult:
        return memory.apply_fault_free(op_a, op_b)


@dataclass
class DualPortMemoryArray:
    """n one-bit cells accessed through two ports."""

    size: int
    fault: DualPortFaultInstance = field(
        default_factory=DualPortFaultInstance
    )
    raw: List[object] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("memory size must be positive")
        if not self.raw:
            self.raw = [DASH] * self.size
        elif len(self.raw) != self.size:
            raise ValueError("raw contents must match the declared size")

    # -- fault-free semantics ------------------------------------------------

    def apply_fault_free(
        self, op_a: Optional[PortOp], op_b: Optional[PortOp]
    ) -> CycleResult:
        for op in (op_a, op_b):
            if op is not None and not 0 <= op.address < self.size:
                raise IndexError(f"address {op.address} out of range")

        write_a = op_a if op_a and op_a.kind is PortOpKind.WRITE else None
        write_b = op_b if op_b and op_b.kind is PortOpKind.WRITE else None

        # Reads sample the pre-cycle value unless colliding with the
        # other port's write to the same cell (indeterminate).
        def read_value(op: Optional[PortOp], other_write: Optional[PortOp]):
            if op is None or op.kind is not PortOpKind.READ:
                return None
            if other_write is not None and other_write.address == op.address:
                return DASH
            return self.raw[op.address]

        result = CycleResult(
            read_value(op_a, write_b), read_value(op_b, write_a)
        )

        if write_a and write_b and write_a.address == write_b.address:
            self.raw[write_a.address] = (
                write_a.value if write_a.value == write_b.value else DASH
            )
        else:
            for write in (write_a, write_b):
                if write is not None:
                    self.raw[write.address] = write.value
        return result

    # -- public cycle API --------------------------------------------------------

    def cycle(
        self, op_a: Optional[PortOp], op_b: Optional[PortOp]
    ) -> CycleResult:
        """Apply one dual-port cycle through the fault instance."""
        return self.fault.on_cycle(self, op_a, op_b)

    def snapshot(self) -> Tuple[object, ...]:
        return tuple(self.raw)

    def __len__(self) -> int:
        return self.size
